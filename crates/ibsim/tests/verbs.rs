//! Integration tests driving the verbs simulator through the DES engine.

use ibdt_ibsim::{
    Cqe, CqeStatus, Fabric, NetConfig, NicEvent, NodeMem, Opcode, PostError, RecvWr, SendWr, Sge,
};
use ibdt_simcore::engine::{Engine, Scheduler, World};
use ibdt_simcore::time::Time;

struct Harness {
    fabric: Fabric,
    mems: Vec<NodeMem>,
    log: Vec<(Time, u32, Cqe)>,
}

impl World for Harness {
    type Event = NicEvent;
    fn handle(&mut self, sched: &mut Scheduler<'_, NicEvent>, ev: NicEvent) {
        let now = sched.now();
        let mut done = Vec::new();
        self.fabric.handle(
            now,
            ev,
            &mut self.mems,
            &mut |t, e| sched.at(t, e),
            &mut done,
        );
        for (node, cqe) in done {
            self.log.push((now, node, cqe));
        }
    }
}

fn harness(n: usize) -> Harness {
    Harness {
        fabric: Fabric::new(n, NetConfig::default()),
        mems: (0..n).map(|_| NodeMem::new(1 << 22)).collect(),
        log: Vec::new(),
    }
}

/// Runs the pending events to quiescence.
fn run(h: &mut Harness, eng: &mut Engine<Harness>) {
    eng.run_to_quiescence(h, 1_000_000);
}

fn reg_buf(h: &mut Harness, node: usize, len: u64, fill: Option<u8>) -> (u64, u32) {
    let addr = h.mems[node].space.alloc_page_aligned(len).unwrap();
    if let Some(b) = fill {
        h.mems[node].space.fill(addr, len, b).unwrap();
    }
    let reg = h.mems[node].regs.register(addr, len);
    (addr, reg.lkey)
}

#[test]
fn send_recv_moves_data() {
    let mut h = harness(2);
    let mut eng = Engine::new();
    let (src, src_key) = reg_buf(&mut h, 0, 4096, Some(0x5A));
    let (dst, dst_key) = reg_buf(&mut h, 1, 4096, Some(0x00));

    let mut sink_events = Vec::new();
    h.fabric
        .post_recv(
            0,
            1,
            0,
            RecvWr {
                wr_id: 7,
                sges: vec![Sge {
                    addr: dst,
                    len: 4096,
                    lkey: dst_key,
                }]
                .into(),
            },
            &h.mems,
            &mut |t, e| sink_events.push((t, e)),
        )
        .unwrap();
    h.fabric
        .post_send(
            100,
            0,
            1,
            SendWr {
                wr_id: 42,
                opcode: Opcode::Send,
                sges: vec![Sge {
                    addr: src,
                    len: 4096,
                    lkey: src_key,
                }]
                .into(),
                remote: None,
                signaled: true,
            },
            &h.mems,
            &mut |t, e| sink_events.push((t, e)),
        )
        .unwrap();
    for (t, e) in sink_events {
        eng.seed(t, e);
    }
    run(&mut h, &mut eng);

    assert_eq!(h.mems[1].space.read(dst, 4096).unwrap(), vec![0x5A; 4096]);
    // Receiver got a recv completion, sender a send completion.
    let recv = h.log.iter().find(|(_, n, c)| *n == 1 && c.is_recv).unwrap();
    assert_eq!(recv.2.wr_id, 7);
    assert_eq!(recv.2.byte_len, 4096);
    assert!(recv.2.status.is_ok());
    let send = h
        .log
        .iter()
        .find(|(_, n, c)| *n == 0 && !c.is_recv)
        .unwrap();
    assert_eq!(send.2.wr_id, 42);
    // Sender completion is after receiver delivery (ACK round trip).
    assert!(send.0 > recv.0);
    assert_eq!(h.fabric.stats().rnr_events, 0);
}

#[test]
fn send_without_recv_parks_until_posted() {
    let mut h = harness(2);
    let mut eng = Engine::new();
    let (src, src_key) = reg_buf(&mut h, 0, 64, Some(9));
    let (dst, dst_key) = reg_buf(&mut h, 1, 64, None);

    let mut evs = Vec::new();
    h.fabric
        .post_send(
            0,
            0,
            1,
            SendWr {
                wr_id: 1,
                opcode: Opcode::Send,
                sges: vec![Sge {
                    addr: src,
                    len: 64,
                    lkey: src_key,
                }]
                .into(),
                remote: None,
                signaled: true,
            },
            &h.mems,
            &mut |t, e| evs.push((t, e)),
        )
        .unwrap();
    for (t, e) in evs {
        eng.seed(t, e);
    }
    run(&mut h, &mut eng);
    // Parked: nothing delivered yet.
    assert!(h.log.is_empty());
    assert_eq!(h.fabric.stats().rnr_events, 1);
    assert_eq!(h.mems[1].space.read(dst, 64).unwrap(), vec![0; 64]);

    // Post the receive much later; the parked send completes.
    let now = eng.now() + 10_000;
    let mut evs = Vec::new();
    h.fabric
        .post_recv(
            now,
            1,
            0,
            RecvWr {
                wr_id: 2,
                sges: vec![Sge {
                    addr: dst,
                    len: 64,
                    lkey: dst_key,
                }]
                .into(),
            },
            &h.mems,
            &mut |t, e| evs.push((t, e)),
        )
        .unwrap();
    for (t, e) in evs {
        eng.seed(t, e);
    }
    run(&mut h, &mut eng);
    assert_eq!(h.mems[1].space.read(dst, 64).unwrap(), vec![9; 64]);
    assert_eq!(
        h.log
            .iter()
            .filter(|(_, n, c)| *n == 1 && c.is_recv)
            .count(),
        1
    );
}

#[test]
fn rdma_write_places_data_without_recv() {
    let mut h = harness(2);
    let mut eng = Engine::new();
    let (src, src_key) = reg_buf(&mut h, 0, 1024, Some(0xAB));
    let (dst, _) = reg_buf(&mut h, 1, 1024, None);
    let rkey = h.mems[1].regs.covering(dst, 1024).unwrap().rkey;

    let mut evs = Vec::new();
    h.fabric
        .post_send(
            0,
            0,
            1,
            SendWr {
                wr_id: 5,
                opcode: Opcode::RdmaWrite,
                sges: vec![Sge {
                    addr: src,
                    len: 1024,
                    lkey: src_key,
                }]
                .into(),
                remote: Some((dst, rkey)),
                signaled: true,
            },
            &h.mems,
            &mut |t, e| evs.push((t, e)),
        )
        .unwrap();
    for (t, e) in evs {
        eng.seed(t, e);
    }
    run(&mut h, &mut eng);
    assert_eq!(h.mems[1].space.read(dst, 1024).unwrap(), vec![0xAB; 1024]);
    // Only a local completion; no recv consumed, no recv CQE.
    assert_eq!(h.log.len(), 1);
    assert!(!h.log[0].2.is_recv);
    assert!(h.log[0].2.status.is_ok());
}

#[test]
fn rdma_write_gather_concatenates_blocks() {
    let mut h = harness(2);
    let mut eng = Engine::new();
    // Source: whole region registered once; gather three noncontiguous
    // pieces.
    let (src, src_key) = reg_buf(&mut h, 0, 4096, None);
    for (i, fill) in [(0u64, 1u8), (1000, 2), (2000, 3)] {
        h.mems[0].space.fill(src + i, 16, fill).unwrap();
    }
    let (dst, _) = reg_buf(&mut h, 1, 4096, None);
    let rkey = h.mems[1].regs.covering(dst, 48).unwrap().rkey;

    let mut evs = Vec::new();
    h.fabric
        .post_send(
            0,
            0,
            1,
            SendWr {
                wr_id: 9,
                opcode: Opcode::RdmaWrite,
                sges: vec![
                    Sge {
                        addr: src,
                        len: 16,
                        lkey: src_key,
                    },
                    Sge {
                        addr: src + 1000,
                        len: 16,
                        lkey: src_key,
                    },
                    Sge {
                        addr: src + 2000,
                        len: 16,
                        lkey: src_key,
                    },
                ]
                .into(),
                remote: Some((dst, rkey)),
                signaled: false,
            },
            &h.mems,
            &mut |t, e| evs.push((t, e)),
        )
        .unwrap();
    for (t, e) in evs {
        eng.seed(t, e);
    }
    run(&mut h, &mut eng);
    let mut expect = vec![1u8; 16];
    expect.extend(vec![2u8; 16]);
    expect.extend(vec![3u8; 16]);
    assert_eq!(h.mems[1].space.read(dst, 48).unwrap(), expect);
    assert!(h.log.is_empty(), "unsignaled write produces no CQE");
}

#[test]
fn write_with_immediate_notifies_receiver() {
    let mut h = harness(2);
    let mut eng = Engine::new();
    let (src, src_key) = reg_buf(&mut h, 0, 128, Some(7));
    let (dst, dst_key) = reg_buf(&mut h, 1, 128, None);
    let rkey = h.mems[1].regs.covering(dst, 128).unwrap().rkey;

    let mut evs = Vec::new();
    // Immediate consumes a receive descriptor (buffers unused).
    h.fabric
        .post_recv(
            0,
            1,
            0,
            RecvWr {
                wr_id: 70,
                sges: vec![Sge {
                    addr: dst,
                    len: 0,
                    lkey: dst_key,
                }]
                .into(),
            },
            &h.mems,
            &mut |t, e| evs.push((t, e)),
        )
        .unwrap();
    h.fabric
        .post_send(
            0,
            0,
            1,
            SendWr {
                wr_id: 71,
                opcode: Opcode::RdmaWriteImm(0xBEEF),
                sges: vec![Sge {
                    addr: src,
                    len: 128,
                    lkey: src_key,
                }]
                .into(),
                remote: Some((dst, rkey)),
                signaled: false,
            },
            &h.mems,
            &mut |t, e| evs.push((t, e)),
        )
        .unwrap();
    for (t, e) in evs {
        eng.seed(t, e);
    }
    run(&mut h, &mut eng);
    assert_eq!(h.mems[1].space.read(dst, 128).unwrap(), vec![7; 128]);
    let recv = h.log.iter().find(|(_, n, c)| *n == 1 && c.is_recv).unwrap();
    assert_eq!(recv.2.imm, Some(0xBEEF));
    assert_eq!(recv.2.wr_id, 70);
    assert_eq!(recv.2.byte_len, 128);
}

#[test]
fn bad_rkey_is_a_remote_access_error() {
    let mut h = harness(2);
    let mut eng = Engine::new();
    let (src, src_key) = reg_buf(&mut h, 0, 64, Some(1));
    let (dst, _) = reg_buf(&mut h, 1, 64, None);

    let mut evs = Vec::new();
    h.fabric
        .post_send(
            0,
            0,
            1,
            SendWr {
                wr_id: 3,
                opcode: Opcode::RdmaWrite,
                sges: vec![Sge {
                    addr: src,
                    len: 64,
                    lkey: src_key,
                }]
                .into(),
                remote: Some((dst, 0xDEAD)),
                signaled: true,
            },
            &h.mems,
            &mut |t, e| evs.push((t, e)),
        )
        .unwrap();
    for (t, e) in evs {
        eng.seed(t, e);
    }
    run(&mut h, &mut eng);
    assert_eq!(
        h.mems[1].space.read(dst, 64).unwrap(),
        vec![0; 64],
        "no data placed"
    );
    assert_eq!(h.log.len(), 1);
    assert!(matches!(h.log[0].2.status, CqeStatus::RemoteAccess(_)));
}

#[test]
fn rdma_read_scatters_remote_data() {
    let mut h = harness(2);
    let mut eng = Engine::new();
    // Node 1 holds the data; node 0 reads it into two scattered pieces.
    let (remote, _) = reg_buf(&mut h, 1, 256, Some(0x33));
    let rkey = h.mems[1].regs.covering(remote, 256).unwrap().rkey;
    let (local, local_key) = reg_buf(&mut h, 0, 4096, None);

    let mut evs = Vec::new();
    h.fabric
        .post_send(
            0,
            0,
            1,
            SendWr {
                wr_id: 11,
                opcode: Opcode::RdmaRead,
                sges: vec![
                    Sge {
                        addr: local,
                        len: 100,
                        lkey: local_key,
                    },
                    Sge {
                        addr: local + 2048,
                        len: 156,
                        lkey: local_key,
                    },
                ]
                .into(),
                remote: Some((remote, rkey)),
                signaled: true,
            },
            &h.mems,
            &mut |t, e| evs.push((t, e)),
        )
        .unwrap();
    for (t, e) in evs {
        eng.seed(t, e);
    }
    run(&mut h, &mut eng);
    assert_eq!(h.mems[0].space.read(local, 100).unwrap(), vec![0x33; 100]);
    assert_eq!(
        h.mems[0].space.read(local + 2048, 156).unwrap(),
        vec![0x33; 156]
    );
    assert_eq!(h.log.len(), 1);
    assert!(h.log[0].2.status.is_ok());
}

#[test]
fn rdma_read_slower_than_write() {
    // Same payload: read completion must be later than write completion.
    let time_for = |opcode: Opcode| {
        let mut h = harness(2);
        let mut eng = Engine::new();
        let (a, ka) = reg_buf(&mut h, 0, 8192, Some(1));
        let (b, _) = reg_buf(&mut h, 1, 8192, Some(2));
        let rkey = h.mems[1].regs.covering(b, 8192).unwrap().rkey;
        let mut evs = Vec::new();
        h.fabric
            .post_send(
                0,
                0,
                1,
                SendWr {
                    wr_id: 1,
                    opcode,
                    sges: vec![Sge {
                        addr: a,
                        len: 8192,
                        lkey: ka,
                    }]
                    .into(),
                    remote: Some((b, rkey)),
                    signaled: true,
                },
                &h.mems,
                &mut |t, e| evs.push((t, e)),
            )
            .unwrap();
        for (t, e) in evs {
            eng.seed(t, e);
        }
        run(&mut h, &mut eng);
        h.log[0].0
    };
    let w = time_for(Opcode::RdmaWrite);
    let r = time_for(Opcode::RdmaRead);
    assert!(r > w, "read {r} should exceed write {w}");
}

#[test]
fn tx_engine_serializes_back_to_back_messages() {
    let mut h = harness(2);
    let mut eng = Engine::new();
    let (src, src_key) = reg_buf(&mut h, 0, 1 << 20, Some(1));
    let (dst, _) = reg_buf(&mut h, 1, 1 << 21, None);
    let rkey = h.mems[1].regs.covering(dst, 1).unwrap().rkey;

    let mut evs = Vec::new();
    for i in 0..2u64 {
        h.fabric
            .post_send(
                0,
                0,
                1,
                SendWr {
                    wr_id: i,
                    opcode: Opcode::RdmaWrite,
                    sges: vec![Sge {
                        addr: src,
                        len: 1 << 20,
                        lkey: src_key,
                    }]
                    .into(),
                    remote: Some((dst + i * (1 << 20), rkey)),
                    signaled: true,
                },
                &h.mems,
                &mut |t, e| evs.push((t, e)),
            )
            .unwrap();
    }
    for (t, e) in evs {
        eng.seed(t, e);
    }
    run(&mut h, &mut eng);
    let mut times: Vec<Time> = h.log.iter().map(|(t, _, _)| *t).collect();
    times.sort_unstable();
    let wire = NetConfig::default().wire_ns(1 << 20);
    let gap = times[1] - times[0];
    // Second completion trails the first by one full serialization.
    assert!(gap >= wire, "gap {gap} < wire {wire}");
    assert!(gap < wire + 10_000);
}

#[test]
fn post_errors_detected_synchronously() {
    let mut h = harness(2);
    let (src, src_key) = reg_buf(&mut h, 0, 64, None);
    let cfg = NetConfig::default();
    let mut sink = |_t: Time, _e: NicEvent| {};

    // Too many SGEs.
    let wr = SendWr {
        wr_id: 0,
        opcode: Opcode::Send,
        sges: vec![
            Sge {
                addr: src,
                len: 1,
                lkey: src_key
            };
            cfg.max_sge + 1
        ]
        .into(),
        remote: None,
        signaled: false,
    };
    assert!(matches!(
        h.fabric.post_send(0, 0, 1, wr, &h.mems, &mut sink),
        Err(PostError::TooManySges { .. })
    ));

    // Stale lkey.
    let wr = SendWr {
        wr_id: 0,
        opcode: Opcode::Send,
        sges: vec![Sge {
            addr: src,
            len: 64,
            lkey: 0x999,
        }]
        .into(),
        remote: None,
        signaled: false,
    };
    assert!(matches!(
        h.fabric.post_send(0, 0, 1, wr, &h.mems, &mut sink),
        Err(PostError::BadLocalKey(_))
    ));

    // RDMA without remote.
    let wr = SendWr {
        wr_id: 0,
        opcode: Opcode::RdmaWrite,
        sges: vec![Sge {
            addr: src,
            len: 64,
            lkey: src_key,
        }]
        .into(),
        remote: None,
        signaled: false,
    };
    assert!(matches!(
        h.fabric.post_send(0, 0, 1, wr, &h.mems, &mut sink),
        Err(PostError::MissingRemote)
    ));

    // Unknown peer.
    let wr = SendWr {
        wr_id: 0,
        opcode: Opcode::Send,
        sges: vec![Sge {
            addr: src,
            len: 64,
            lkey: src_key,
        }]
        .into(),
        remote: None,
        signaled: false,
    };
    assert!(matches!(
        h.fabric.post_send(0, 0, 9, wr, &h.mems, &mut sink),
        Err(PostError::NoSuchPeer { peer: 9 })
    ));
}

#[test]
fn oversized_send_errors_both_sides() {
    let mut h = harness(2);
    let mut eng = Engine::new();
    let (src, src_key) = reg_buf(&mut h, 0, 256, Some(1));
    let (dst, dst_key) = reg_buf(&mut h, 1, 64, None);

    let mut evs = Vec::new();
    h.fabric
        .post_recv(
            0,
            1,
            0,
            RecvWr {
                wr_id: 1,
                sges: vec![Sge {
                    addr: dst,
                    len: 64,
                    lkey: dst_key,
                }]
                .into(),
            },
            &h.mems,
            &mut |t, e| evs.push((t, e)),
        )
        .unwrap();
    h.fabric
        .post_send(
            0,
            0,
            1,
            SendWr {
                wr_id: 2,
                opcode: Opcode::Send,
                sges: vec![Sge {
                    addr: src,
                    len: 256,
                    lkey: src_key,
                }]
                .into(),
                remote: None,
                signaled: true,
            },
            &h.mems,
            &mut |t, e| evs.push((t, e)),
        )
        .unwrap();
    for (t, e) in evs {
        eng.seed(t, e);
    }
    run(&mut h, &mut eng);
    let recv_err = h.log.iter().find(|(_, n, _)| *n == 1).unwrap();
    assert!(matches!(
        recv_err.2.status,
        CqeStatus::LocalLengthError {
            sent: 256,
            capacity: 64
        }
    ));
    let send_err = h.log.iter().find(|(_, n, _)| *n == 0).unwrap();
    assert!(!send_err.2.status.is_ok());
}

#[test]
fn list_post_functionally_identical_to_single() {
    let run_variant = |list: bool| {
        let mut h = harness(2);
        let mut eng = Engine::new();
        let (src, src_key) = reg_buf(&mut h, 0, 4096, None);
        for i in 0..4u64 {
            h.mems[0]
                .space
                .fill(src + i * 1024, 1024, i as u8 + 1)
                .unwrap();
        }
        let (dst, _) = reg_buf(&mut h, 1, 4096, None);
        let rkey = h.mems[1].regs.covering(dst, 1).unwrap().rkey;
        let wrs: Vec<SendWr> = (0..4u64)
            .map(|i| SendWr {
                wr_id: i,
                opcode: Opcode::RdmaWrite,
                sges: vec![Sge {
                    addr: src + i * 1024,
                    len: 1024,
                    lkey: src_key,
                }]
                .into(),
                remote: Some((dst + i * 1024, rkey)),
                signaled: i == 3,
            })
            .collect();
        let mut evs = Vec::new();
        if list {
            h.fabric
                .post_send_list(0, 0, 1, wrs, &h.mems, &mut |t, e| evs.push((t, e)))
                .unwrap();
        } else {
            for wr in wrs {
                h.fabric
                    .post_send(0, 0, 1, wr, &h.mems, &mut |t, e| evs.push((t, e)))
                    .unwrap();
            }
        }
        for (t, e) in evs {
            eng.seed(t, e);
        }
        run(&mut h, &mut eng);
        h.mems[1].space.read(dst, 4096).unwrap()
    };
    let a = run_variant(false);
    let b = run_variant(true);
    assert_eq!(a, b);
    let mut expect = Vec::new();
    for i in 0..4u8 {
        expect.extend(vec![i + 1; 1024]);
    }
    assert_eq!(a, expect);
}

#[test]
fn send_queue_depth_enforced() {
    let mut h = harness(2);
    h.fabric = Fabric::new(
        2,
        NetConfig {
            sq_depth: 4,
            ..Default::default()
        },
    );
    let (src, src_key) = reg_buf(&mut h, 0, 4096, Some(1));
    let (dst, _) = reg_buf(&mut h, 1, 1 << 20, None);
    let rkey = h.mems[1].regs.covering(dst, 1).unwrap().rkey;

    let mut evs = Vec::new();
    let mut results = Vec::new();
    // All posted at t=0: the 5th must bounce off the full queue.
    for i in 0..6u64 {
        let r = h.fabric.post_send(
            0,
            0,
            1,
            SendWr {
                wr_id: i,
                opcode: Opcode::RdmaWrite,
                sges: vec![Sge {
                    addr: src,
                    len: 4096,
                    lkey: src_key,
                }]
                .into(),
                remote: Some((dst + i * 4096, rkey)),
                signaled: false,
            },
            &h.mems,
            &mut |t, e| evs.push((t, e)),
        );
        results.push(r);
    }
    assert!(results[3].is_ok());
    assert!(matches!(results[4], Err(PostError::QueueFull { depth: 4 })));

    // After the NIC drains the queue, posting works again.
    let mut eng = Engine::new();
    for (t, e) in evs {
        eng.seed(t, e);
    }
    run(&mut h, &mut eng);
    let late = eng.now() + 1;
    let r = h.fabric.post_send(
        late,
        0,
        1,
        SendWr {
            wr_id: 99,
            opcode: Opcode::RdmaWrite,
            sges: vec![Sge {
                addr: src,
                len: 4096,
                lkey: src_key,
            }]
            .into(),
            remote: Some((dst, rkey)),
            signaled: false,
        },
        &h.mems,
        &mut |_t, _e| {},
    );
    assert!(r.is_ok(), "queue drains over time: {r:?}");
}
