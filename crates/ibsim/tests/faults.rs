//! Fault-injection and reliability tests: seeded drops, corruptions,
//! delays and stalls must either be recovered transparently by the RC
//! transport (retransmit / RNR backoff) or surface as typed error
//! completions plus a flushed queue pair — never as silent corruption.

use ibdt_ibsim::{
    Cqe, CqeStatus, Fabric, FaultPlan, LinkFault, NetConfig, NicEvent, NodeFault, NodeMem, Opcode,
    PostError, QpState, RecvWr, SendWr, Sge,
};
use ibdt_simcore::engine::{Engine, Scheduler, World};
use ibdt_simcore::time::Time;

struct Harness {
    fabric: Fabric,
    mems: Vec<NodeMem>,
    log: Vec<(Time, u32, Cqe)>,
}

impl World for Harness {
    type Event = NicEvent;
    fn handle(&mut self, sched: &mut Scheduler<'_, NicEvent>, ev: NicEvent) {
        let now = sched.now();
        let mut done = Vec::new();
        self.fabric.handle(
            now,
            ev,
            &mut self.mems,
            &mut |t, e| sched.at(t, e),
            &mut done,
        );
        for (node, cqe) in done {
            self.log.push((now, node, cqe));
        }
    }
}

fn harness(n: usize, cfg: NetConfig, faults: FaultPlan) -> Harness {
    let mut fabric = Fabric::new(n, cfg);
    fabric.set_fault_plan(faults);
    Harness {
        fabric,
        mems: (0..n).map(|_| NodeMem::new(1 << 22)).collect(),
        log: Vec::new(),
    }
}

fn reg_buf(h: &mut Harness, node: usize, len: u64, fill: Option<u8>) -> (u64, u32) {
    let addr = h.mems[node].space.alloc_page_aligned(len).unwrap();
    if let Some(b) = fill {
        h.mems[node].space.fill(addr, len, b).unwrap();
    }
    let reg = h.mems[node].regs.register(addr, len);
    (addr, reg.lkey)
}

/// Posts a signaled send 0→1 with a matching recv, runs to quiescence.
fn send_one(h: &mut Harness, eng: &mut Engine<Harness>, len: u64, wr_id: u64) -> (u64, u64) {
    let base = eng.now();
    let (src, src_key) = reg_buf(h, 0, len, Some(0x5A));
    let (dst, dst_key) = reg_buf(h, 1, len, Some(0x00));
    let mut sink = Vec::new();
    h.fabric
        .post_recv(
            base,
            1,
            0,
            RecvWr {
                wr_id: wr_id + 1000,
                sges: vec![Sge {
                    addr: dst,
                    len,
                    lkey: dst_key,
                }]
                .into(),
            },
            &h.mems,
            &mut |t, e| sink.push((t, e)),
        )
        .unwrap();
    h.fabric
        .post_send(
            base + 100,
            0,
            1,
            SendWr {
                wr_id,
                opcode: Opcode::Send,
                sges: vec![Sge {
                    addr: src,
                    len,
                    lkey: src_key,
                }]
                .into(),
                remote: None,
                signaled: true,
            },
            &h.mems,
            &mut |t, e| sink.push((t, e)),
        )
        .unwrap();
    for (t, e) in sink {
        eng.seed(t, e);
    }
    eng.run_to_quiescence(h, 10_000_000);
    (src, dst)
}

#[test]
fn drops_are_retransmitted_transparently() {
    let faults = FaultPlan {
        seed: 11,
        drop_rate: 0.3,
        ..FaultPlan::none()
    };
    let mut h = harness(2, NetConfig::default(), faults);
    let mut eng = Engine::new();
    for i in 0..8 {
        let (_, dst) = send_one(&mut h, &mut eng, 4096, i);
        assert_eq!(h.mems[1].space.read(dst, 4096).unwrap(), vec![0x5A; 4096]);
    }
    let st = h.fabric.stats();
    assert!(st.drops_injected > 0, "plan injected nothing: {st:?}");
    assert!(st.retransmits >= st.drops_injected);
    assert_eq!(st.qp_errors, 0, "retry budget should absorb 30% loss");
    assert!(h.log.iter().all(|(_, _, c)| c.status.is_ok()));
}

#[test]
fn corruption_recovers_via_icrc_nak() {
    let faults = FaultPlan {
        seed: 23,
        corrupt_rate: 0.4,
        ..FaultPlan::none()
    };
    let mut h = harness(2, NetConfig::default(), faults);
    let mut eng = Engine::new();
    for i in 0..8 {
        let (_, dst) = send_one(&mut h, &mut eng, 2048, i);
        // A corrupted transfer is NAKed and retransmitted; the payload
        // that lands must be the clean one.
        assert_eq!(h.mems[1].space.read(dst, 2048).unwrap(), vec![0x5A; 2048]);
    }
    let st = h.fabric.stats();
    assert!(st.corruptions_injected > 0);
    assert!(st.retransmits >= st.corruptions_injected);
    assert_eq!(st.qp_errors, 0);
}

#[test]
fn delays_do_not_reorder_delivery() {
    let faults = FaultPlan {
        seed: 7,
        delay_rate: 0.8,
        max_delay_ns: 200_000,
        ..FaultPlan::none()
    };
    let mut h = harness(2, NetConfig::default(), faults);
    let mut eng = Engine::new();
    for i in 0..12 {
        send_one(&mut h, &mut eng, 1024, i);
    }
    let st = h.fabric.stats();
    assert!(st.delays_injected > 0);
    assert_eq!(st.qp_errors, 0);
    // Receive completions must appear in posting order despite the
    // delayed wire transfers (the responder holds a reorder buffer).
    let recv_ids: Vec<u64> = h
        .log
        .iter()
        .filter(|(_, n, c)| *n == 1 && c.is_recv)
        .map(|(_, _, c)| c.wr_id)
        .collect();
    let mut sorted = recv_ids.clone();
    sorted.sort_unstable();
    assert_eq!(recv_ids, sorted, "delays reordered receive completions");
}

#[test]
fn stalls_push_completions_later() {
    let clean = {
        let mut h = harness(2, NetConfig::default(), FaultPlan::none());
        let mut eng = Engine::new();
        send_one(&mut h, &mut eng, 8192, 1);
        eng.now()
    };
    let faults = FaultPlan {
        seed: 3,
        stall_rate: 1.0,
        stall_ns: 100_000,
        ..FaultPlan::none()
    };
    let mut h = harness(2, NetConfig::default(), faults);
    let mut eng = Engine::new();
    let (_, dst) = send_one(&mut h, &mut eng, 8192, 1);
    assert_eq!(h.mems[1].space.read(dst, 8192).unwrap(), vec![0x5A; 8192]);
    assert!(h.fabric.stats().stalls_injected > 0);
    assert!(
        eng.now() >= clean + 100_000,
        "stall did not slow the NIC engine"
    );
}

#[test]
fn certain_loss_exhausts_retry_and_flushes_the_qp() {
    let faults = FaultPlan {
        seed: 5,
        drop_rate: 1.0,
        ..FaultPlan::none()
    };
    let cfg = NetConfig {
        retry_cnt: 2,
        ..NetConfig::default()
    };
    let mut h = harness(2, cfg.clone(), faults);
    let mut eng = Engine::new();
    let (src, src_key) = reg_buf(&mut h, 0, 4096, Some(0x5A));
    let (dst, dst_key) = reg_buf(&mut h, 1, 4096, Some(0x00));
    let mut sink = Vec::new();
    h.fabric
        .post_recv(
            0,
            1,
            0,
            RecvWr {
                wr_id: 9,
                sges: vec![Sge {
                    addr: dst,
                    len: 4096,
                    lkey: dst_key,
                }]
                .into(),
            },
            &h.mems,
            &mut |t, e| sink.push((t, e)),
        )
        .unwrap();
    // Two outstanding sends: the first exhausts the retry budget, the
    // second must be flushed with error by the QP transition.
    for wr_id in [1u64, 2u64] {
        h.fabric
            .post_send(
                100,
                0,
                1,
                SendWr {
                    wr_id,
                    opcode: Opcode::Send,
                    sges: vec![Sge {
                        addr: src,
                        len: 2048,
                        lkey: src_key,
                    }]
                    .into(),
                    remote: None,
                    signaled: true,
                },
                &h.mems,
                &mut |t, e| sink.push((t, e)),
            )
            .unwrap();
    }
    for (t, e) in sink {
        eng.seed(t, e);
    }
    eng.run_to_quiescence(&mut h, 10_000_000);

    let st = h.fabric.stats();
    assert!(st.qp_errors >= 1);
    assert!(st.flushed_wqes >= 1);
    assert!(h.fabric.qp_errored(0, 1));
    let first = h
        .log
        .iter()
        .find(|(_, n, c)| *n == 0 && c.wr_id == 1)
        .unwrap();
    assert_eq!(
        first.2.status,
        CqeStatus::RetryExceeded {
            attempts: cfg.retry_cnt + 1
        }
    );
    let second = h
        .log
        .iter()
        .find(|(_, n, c)| *n == 0 && c.wr_id == 2)
        .unwrap();
    assert_eq!(second.2.status, CqeStatus::FlushErr);
    // Untouched destination: no partial delivery leaked through.
    assert_eq!(h.mems[1].space.read(dst, 4096).unwrap(), vec![0x00; 4096]);

    // Posting on an errored QP fails synchronously.
    let err = h.fabric.post_send(
        eng.now(),
        0,
        1,
        SendWr {
            wr_id: 3,
            opcode: Opcode::Send,
            sges: vec![Sge {
                addr: src,
                len: 64,
                lkey: src_key,
            }]
            .into(),
            remote: None,
            signaled: true,
        },
        &h.mems,
        &mut |_, _| {},
    );
    assert!(matches!(err, Err(PostError::QpError { peer: 1 })));
}

#[test]
fn finite_rnr_budget_backs_off_then_errors() {
    // No receive descriptor will ever be posted; with a finite
    // `rnr_retry` the transfer must back off the configured number of
    // times and then complete with `RnrRetryExceeded`.
    let cfg = NetConfig {
        rnr_retry: 3,
        ..NetConfig::default()
    };
    let mut h = harness(2, cfg, FaultPlan::none());
    let mut eng = Engine::new();
    let (src, src_key) = reg_buf(&mut h, 0, 1024, Some(0x11));
    let mut sink = Vec::new();
    h.fabric
        .post_send(
            100,
            0,
            1,
            SendWr {
                wr_id: 77,
                opcode: Opcode::Send,
                sges: vec![Sge {
                    addr: src,
                    len: 1024,
                    lkey: src_key,
                }]
                .into(),
                remote: None,
                signaled: true,
            },
            &h.mems,
            &mut |t, e| sink.push((t, e)),
        )
        .unwrap();
    for (t, e) in sink {
        eng.seed(t, e);
    }
    eng.run_to_quiescence(&mut h, 1_000_000);

    let st = h.fabric.stats();
    assert!(st.rnr_events >= 1);
    assert!(st.rnr_backoff_retries >= 1);
    assert!(st.qp_errors >= 1);
    let cqe = h
        .log
        .iter()
        .find(|(_, n, c)| *n == 0 && c.wr_id == 77)
        .unwrap();
    assert!(matches!(cqe.2.status, CqeStatus::RnrRetryExceeded { .. }));
}

#[test]
fn rnr_backoff_delivers_once_receiver_catches_up() {
    let cfg = NetConfig {
        rnr_retry: 6,
        ..NetConfig::default()
    };
    let mut h = harness(2, cfg, FaultPlan::none());
    let mut eng = Engine::new();
    let (src, src_key) = reg_buf(&mut h, 0, 512, Some(0x33));
    let (dst, dst_key) = reg_buf(&mut h, 1, 512, Some(0x00));
    let mut sink = Vec::new();
    h.fabric
        .post_send(
            100,
            0,
            1,
            SendWr {
                wr_id: 5,
                opcode: Opcode::Send,
                sges: vec![Sge {
                    addr: src,
                    len: 512,
                    lkey: src_key,
                }]
                .into(),
                remote: None,
                signaled: true,
            },
            &h.mems,
            &mut |t, e| sink.push((t, e)),
        )
        .unwrap();
    for (t, e) in sink {
        eng.seed(t, e);
    }
    // Let the transfer hit RNR and start backing off.
    while eng.step(&mut h) && eng.now() < 30_000 {}
    assert!(h.fabric.stats().rnr_events >= 1);
    // Late receive: the next timed retry must deliver.
    let mut sink = Vec::new();
    h.fabric
        .post_recv(
            eng.now(),
            1,
            0,
            RecvWr {
                wr_id: 6,
                sges: vec![Sge {
                    addr: dst,
                    len: 512,
                    lkey: dst_key,
                }]
                .into(),
            },
            &h.mems,
            &mut |t, e| sink.push((t, e)),
        )
        .unwrap();
    for (t, e) in sink {
        eng.seed(t, e);
    }
    eng.run_to_quiescence(&mut h, 1_000_000);

    assert_eq!(h.mems[1].space.read(dst, 512).unwrap(), vec![0x33; 512]);
    let st = h.fabric.stats();
    assert_eq!(st.qp_errors, 0);
    assert!(st.rnr_backoff_retries >= 1);
    let cqe = h
        .log
        .iter()
        .find(|(_, n, c)| *n == 0 && c.wr_id == 5)
        .unwrap();
    assert!(cqe.2.status.is_ok());
}

#[test]
fn fault_injection_is_deterministic() {
    let run = || {
        let faults = FaultPlan {
            seed: 99,
            drop_rate: 0.2,
            corrupt_rate: 0.1,
            delay_rate: 0.3,
            max_delay_ns: 40_000,
            stall_rate: 0.1,
            stall_ns: 10_000,
            ..FaultPlan::none()
        };
        let mut h = harness(2, NetConfig::default(), faults);
        let mut eng = Engine::new();
        for i in 0..6 {
            send_one(&mut h, &mut eng, 4096, i);
        }
        (eng.now(), h.fabric.stats(), h.log)
    };
    let (t1, s1, l1) = run();
    let (t2, s2, l2) = run();
    assert_eq!(t1, t2, "virtual clock diverged across identical runs");
    assert_eq!(s1, s2, "fabric counters diverged");
    assert_eq!(l1.len(), l2.len());
    for (a, b) in l1.iter().zip(l2.iter()) {
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2.wr_id, b.2.wr_id);
    }
}

#[test]
fn inert_plan_changes_nothing() {
    let run = |faults: Option<FaultPlan>| {
        let mut h = harness(
            2,
            NetConfig::default(),
            faults.unwrap_or_else(FaultPlan::none),
        );
        let mut eng = Engine::new();
        for i in 0..4 {
            send_one(&mut h, &mut eng, 4096, i);
        }
        (eng.now(), h.fabric.stats())
    };
    // `FaultPlan::none()` (rates all zero) must be bit-identical to a
    // fabric that never had a plan installed.
    let (t_with, s_with) = run(Some(FaultPlan {
        seed: 1234,
        ..FaultPlan::none()
    }));
    let (t_none, s_none) = run(None);
    assert_eq!(t_with, t_none);
    assert_eq!(s_with, s_none);
    assert_eq!(s_with.drops_injected + s_with.corruptions_injected, 0);
}

// ---------------------------------------------------------------------
// QP lifecycle, APM, and connection epochs
// ---------------------------------------------------------------------

#[test]
fn qp_state_machine_enforces_legal_transitions() {
    let mut h = harness(2, NetConfig::default(), FaultPlan::none());
    let mut sink = |_t: Time, _e: NicEvent| {};
    // Tear 0->1 down; the spec's establishment ladder must be walked in
    // order from there.
    h.fabric
        .modify_qp(0, 0, 1, QpState::Reset, &mut sink)
        .unwrap();
    assert_eq!(h.fabric.qp_state(0, 1), QpState::Reset);
    // Skipping straight to RTS (or RTR) from RESET is illegal.
    let err = h
        .fabric
        .modify_qp(0, 0, 1, QpState::Rts, &mut sink)
        .unwrap_err();
    assert_eq!((err.from, err.to), (QpState::Reset, QpState::Rts));
    assert!(h
        .fabric
        .modify_qp(0, 0, 1, QpState::Rtr, &mut sink)
        .is_err());
    // RESET -> INIT -> RTR -> RTS is legal.
    h.fabric
        .modify_qp(0, 0, 1, QpState::Init, &mut sink)
        .unwrap();
    h.fabric
        .modify_qp(0, 0, 1, QpState::Rtr, &mut sink)
        .unwrap();
    // A send posted before RTS is rejected synchronously.
    let (src, src_key) = reg_buf(&mut h, 0, 64, Some(1));
    let err = h.fabric.post_send(
        0,
        0,
        1,
        SendWr {
            wr_id: 1,
            opcode: Opcode::Send,
            sges: vec![Sge {
                addr: src,
                len: 64,
                lkey: src_key,
            }]
            .into(),
            remote: None,
            signaled: true,
        },
        &h.mems,
        &mut |_, _| {},
    );
    assert!(matches!(err, Err(PostError::QpNotReady { peer: 1 })));
    h.fabric
        .modify_qp(0, 0, 1, QpState::Rtr, &mut sink)
        .unwrap_err(); // RTR->RTR illegal
    h.fabric
        .modify_qp(0, 0, 1, QpState::Rts, &mut sink)
        .unwrap();
    // RTS <-> SQD (administrative drain) and any -> ERR are legal.
    h.fabric
        .modify_qp(0, 0, 1, QpState::Sqd, &mut sink)
        .unwrap();
    h.fabric
        .modify_qp(0, 0, 1, QpState::Rts, &mut sink)
        .unwrap();
    h.fabric
        .modify_qp(0, 0, 1, QpState::Err, &mut sink)
        .unwrap();
    assert!(h.fabric.qp_errored(0, 1));
    // ERR only leaves through RESET.
    assert!(h
        .fabric
        .modify_qp(0, 0, 1, QpState::Rts, &mut sink)
        .is_err());
    h.fabric
        .modify_qp(0, 0, 1, QpState::Reset, &mut sink)
        .unwrap();
    assert!(!h.fabric.qp_errored(0, 1));
}

#[test]
fn apm_migrates_on_port_down_and_delivery_continues() {
    // Lossless plan with one scheduled port failure on the sender's
    // primary port, early enough to land among the transfers.
    let faults = FaultPlan {
        seed: 1,
        link_faults: vec![LinkFault {
            at_ns: 5_000,
            node: 0,
            port: 0,
            down_ns: 10_000_000,
        }],
        ..FaultPlan::none()
    };
    let mut h = harness(2, NetConfig::default(), faults);
    let mut eng = Engine::new();
    for (t, e) in h.fabric.fault_events() {
        eng.seed(t, e);
    }
    for i in 0..6 {
        let (src, dst) = send_one(&mut h, &mut eng, 8192, i);
        let a = h.mems[0].space.read(src, 8192).unwrap();
        let b = h.mems[1].space.read(dst, 8192).unwrap();
        assert_eq!(a, b, "transfer {i} corrupted across the failover");
    }
    let st = h.fabric.stats();
    assert!(
        st.migrations >= 1,
        "port-down with APM enabled must migrate"
    );
    assert_eq!(st.qp_errors, 0, "APM failover must not error the QP");
    assert_eq!(
        h.fabric.qp_port(0, 1),
        1,
        "path must now ride the alternate port"
    );
    // Every send completed successfully.
    assert!(h.log.iter().all(|(_, _, c)| c.status.is_ok()));
}

#[test]
fn port_down_without_apm_errors_qp_and_reestablish_recovers() {
    let cfg = NetConfig {
        apm_enabled: false,
        ..NetConfig::default()
    };
    let mut h = harness(2, cfg, FaultPlan::none());
    let mut eng = Engine::new();
    // Seed only the failure (no recovery): the primary port stays dark
    // for the whole test.
    eng.seed(1_000, NicEvent::PortDown { node: 0, port: 0 });
    eng.run_to_quiescence(&mut h, 10_000);
    assert!(
        h.fabric.qp_errored(0, 1),
        "no APM: the QP on the dead port must error"
    );
    assert!(h.fabric.stats().qp_errors >= 1);
    assert_eq!(h.fabric.stats().migrations, 0);
    // The connection manager re-establishes the pair; RESET re-selects
    // the live alternate port, so traffic flows again immediately.
    h.fabric.reestablish_qp(0, 1);
    h.fabric.reestablish_qp(1, 0);
    assert_eq!(h.fabric.qp_state(0, 1), QpState::Rts);
    assert_eq!(h.fabric.qp_port(0, 1), 1);
    let (src, dst) = send_one(&mut h, &mut eng, 4096, 77);
    let a = h.mems[0].space.read(src, 4096).unwrap();
    let b = h.mems[1].space.read(dst, 4096).unwrap();
    assert_eq!(a, b, "re-established QP must deliver");
}

#[test]
fn stale_epoch_traffic_is_discarded_on_arrival() {
    // Activate the fault path (epochs are only tracked there) without
    // injecting any fates.
    let faults = FaultPlan {
        seed: 3,
        delay_rate: 0.0,
        link_faults: vec![LinkFault {
            at_ns: 1,
            node: 1,
            port: 1,
            down_ns: 1,
        }],
        ..FaultPlan::none()
    };
    let mut h = harness(2, NetConfig::default(), faults);
    let mut eng = Engine::new();
    let (src, src_key) = reg_buf(&mut h, 0, 4096, Some(0x5A));
    let (dst, dst_key) = reg_buf(&mut h, 1, 4096, Some(0x00));
    let mut sink = Vec::new();
    h.fabric
        .post_recv(
            0,
            1,
            0,
            RecvWr {
                wr_id: 9,
                sges: vec![Sge {
                    addr: dst,
                    len: 4096,
                    lkey: dst_key,
                }]
                .into(),
            },
            &h.mems,
            &mut |t, e| sink.push((t, e)),
        )
        .unwrap();
    h.fabric
        .post_send(
            0,
            0,
            1,
            SendWr {
                wr_id: 1,
                opcode: Opcode::Send,
                sges: vec![Sge {
                    addr: src,
                    len: 4096,
                    lkey: src_key,
                }]
                .into(),
                remote: None,
                signaled: true,
            },
            &h.mems,
            &mut |t, e| sink.push((t, e)),
        )
        .unwrap();
    // The transfer is in flight; tear the connection down and bring it
    // back before the wire events run. The old-epoch arrival must be
    // discarded silently — no data placement, no completion.
    h.fabric.reestablish_qp(0, 1);
    for (t, e) in sink {
        eng.seed(t, e);
    }
    eng.run_to_quiescence(&mut h, 10_000);
    assert_eq!(
        h.mems[1].space.read(dst, 4096).unwrap(),
        vec![0x00; 4096],
        "stale-epoch payload must not be placed"
    );
    assert!(
        h.log
            .iter()
            .all(|(_, _, c)| !c.status.is_ok() || c.wr_id != 1),
        "stale-epoch transfer must not complete successfully: {:?}",
        h.log
    );
    assert!(
        h.fabric.stats().flushed_wqes >= 1,
        "the discard is accounted"
    );
}

#[test]
fn node_crash_kills_both_ports_and_errors_every_touching_qp() {
    // 3-node fabric, node 1 crash-stops with no restart while a send
    // 0 -> 1 is in flight: both of node 1's ports die, every QP that
    // touches it (in either direction) errors, the in-flight transfer
    // flushes typed, and pairs not involving node 1 stay healthy.
    let faults = FaultPlan {
        seed: 5,
        node_faults: vec![NodeFault {
            at_ns: 5_000,
            node: 1,
            restart_after_ns: None,
        }],
        ..FaultPlan::none()
    };
    let mut h = harness(3, NetConfig::default(), faults);
    let mut eng = Engine::new();
    for (t, e) in h.fabric.fault_events() {
        eng.seed(t, e);
    }
    // A large send that cannot finish before the crash at t=5000.
    let (_src, dst) = send_one(&mut h, &mut eng, 1 << 20, 42);

    assert!(h.fabric.node_down(1), "membership must report node 1 dead");
    assert!(h.fabric.any_node_down());
    assert!(
        !h.fabric.node_will_restart(1),
        "no restart window was scheduled"
    );
    assert!(h.fabric.port_down(1, 0) && h.fabric.port_down(1, 1));
    assert_eq!(h.fabric.stats().node_crashes, 1);
    for (a, b) in [(0, 1), (1, 0), (1, 2), (2, 1)] {
        assert!(h.fabric.qp_errored(a, b), "QP {a}->{b} must error");
    }
    assert!(
        !h.fabric.qp_errored(0, 2) && !h.fabric.qp_errored(2, 0),
        "pairs not touching the dead node must stay healthy"
    );
    // The in-flight send surfaced as a typed failure, never success.
    assert!(
        h.log
            .iter()
            .any(|(_, n, c)| *n == 0 && c.wr_id == 42 && !c.status.is_ok()),
        "in-flight send must flush with error: {:?}",
        h.log
    );
    assert_ne!(
        h.mems[1].space.read(dst, 1 << 20).unwrap(),
        vec![0x5A; 1 << 20],
        "the crashed receiver must not have the full payload"
    );
}

#[test]
fn node_restart_recovers_ports_and_reestablished_qps_deliver() {
    // Crash with a restart window: during the window the membership
    // view says "will restart" (suspected, not failed); after it the
    // ports are back and a re-established QP moves data again.
    let faults = FaultPlan {
        seed: 6,
        node_faults: vec![NodeFault {
            at_ns: 1_000,
            node: 1,
            restart_after_ns: Some(50_000),
        }],
        ..FaultPlan::none()
    };
    let mut h = harness(2, NetConfig::default(), faults);
    assert!(
        h.fabric.node_will_restart(1),
        "a restart-windowed fault is suspected, not failed"
    );
    let mut eng = Engine::new();
    for (t, e) in h.fabric.fault_events() {
        eng.seed(t, e);
    }
    eng.run_to_quiescence(&mut h, 100_000);
    assert!(!h.fabric.node_down(1), "node 1 restarted");
    assert!(!h.fabric.port_down(1, 0) && !h.fabric.port_down(1, 1));
    assert_eq!(h.fabric.stats().node_crashes, 1);
    // QPs stay errored until the connection manager re-establishes.
    assert!(h.fabric.qp_errored(0, 1));
    h.fabric.reestablish_qp(0, 1);
    h.fabric.reestablish_qp(1, 0);
    let (src, dst) = send_one(&mut h, &mut eng, 4096, 7);
    let a = h.mems[0].space.read(src, 4096).unwrap();
    let b = h.mems[1].space.read(dst, 4096).unwrap();
    assert_eq!(a, b, "post-restart QP must deliver");
}
