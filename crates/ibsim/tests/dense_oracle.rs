//! Observational equivalence of the dense per-direction QP tables
//! against a HashMap-backed oracle.
//!
//! The fabric keys connection state by `(src, dst)` into a flat
//! `Vec<DirState>` whose *defaults* encode the old "no entry yet"
//! semantics (RTS, no error, epoch 0, primary path). This suite drives
//! random QP churn — modify/reset/reestablish transitions, port
//! down/up with APM migration, and fault-plan traffic with
//! retransmits — against a shadow `HashMap<(u32, u32), ODir>` that
//! implements the documented lifecycle semantics directly, and asserts
//! the observable accessors (`qp_state`, `qp_errored`, `qp_epoch`,
//! `qp_port`) agree for **every** directional pair after every round.
//! Never-touched pairs must read as the defaults, and churn on one
//! pair must not bleed into a neighbor — the two bug classes a dense
//! index layout can introduce that a keyed map cannot.

use ibdt_ibsim::{Fabric, FaultPlan, NetConfig, NicEvent, NodeMem, Opcode, QpState, SendWr, Sge};
use ibdt_simcore::engine::{Engine, Scheduler, World};
use ibdt_simcore::time::Time;
use ibdt_testkit::{cases, Rng};
use std::collections::HashMap;

const N: u32 = 4;

struct Harness {
    fabric: Fabric,
    mems: Vec<NodeMem>,
    completions: u64,
}

impl World for Harness {
    type Event = NicEvent;
    fn handle(&mut self, sched: &mut Scheduler<'_, NicEvent>, ev: NicEvent) {
        let now = sched.now();
        let mut done = Vec::new();
        self.fabric.handle(
            now,
            ev,
            &mut self.mems,
            &mut |t, e| sched.at(t, e),
            &mut done,
        );
        // Flush-with-error completions are expected under churn; only
        // count them.
        self.completions += done.len() as u64;
    }
}

/// Oracle value for one directional pair; the default is the dense
/// table's default, which in turn is the old map's "absent entry".
#[derive(Clone, Copy, PartialEq, Debug)]
struct ODir {
    state: QpState,
    err: bool,
    epoch: u32,
    path: u8,
}

impl Default for ODir {
    fn default() -> Self {
        ODir {
            state: QpState::Rts,
            err: false,
            epoch: 0,
            path: 0,
        }
    }
}

struct Oracle {
    dirs: HashMap<(u32, u32), ODir>,
    down: HashMap<(u32, u8), bool>,
    apm: bool,
}

impl Oracle {
    fn new(apm: bool) -> Self {
        Oracle {
            dirs: HashMap::new(),
            down: HashMap::new(),
            apm,
        }
    }

    fn get(&self, s: u32, d: u32) -> ODir {
        self.dirs.get(&(s, d)).copied().unwrap_or_default()
    }

    fn port_down(&self, node: u32, port: u8) -> bool {
        self.down.get(&(node, port)).copied().unwrap_or(false)
    }

    fn fail(&mut self, s: u32, d: u32) {
        let e = self.dirs.entry((s, d)).or_default();
        if !e.err {
            e.err = true;
            e.state = QpState::Err;
        }
    }

    fn reset(&mut self, s: u32, d: u32) {
        let port = [0u8, 1]
            .into_iter()
            .find(|&p| !self.port_down(s, p) && !self.port_down(d, p))
            .unwrap_or(0);
        let e = self.dirs.entry((s, d)).or_default();
        e.err = false;
        e.state = QpState::Reset;
        e.epoch += 1;
        e.path = port;
    }

    fn reestablish(&mut self, s: u32, d: u32) {
        self.reset(s, d);
        self.dirs.get_mut(&(s, d)).unwrap().state = QpState::Rts;
    }

    /// Mirrors `Fabric::modify_qp`'s legality table; returns whether
    /// the transition was legal (and applied).
    fn modify(&mut self, s: u32, d: u32, target: QpState) -> bool {
        let from = self.get(s, d).state;
        let legal = matches!(
            (from, target),
            (QpState::Reset, QpState::Init)
                | (QpState::Init, QpState::Rtr)
                | (QpState::Rtr, QpState::Rts)
                | (QpState::Rts, QpState::Sqd)
                | (QpState::Sqd, QpState::Rts)
                | (QpState::Sqe, QpState::Rts)
                | (_, QpState::Err)
                | (_, QpState::Reset)
        );
        if !legal {
            return false;
        }
        match target {
            QpState::Err => self.fail(s, d),
            QpState::Reset => self.reset(s, d),
            other => self.dirs.entry((s, d)).or_default().state = other,
        }
        true
    }

    fn port_down_event(&mut self, node: u32, port: u8) {
        self.down.insert((node, port), true);
        for other in 0..N {
            if other == node {
                continue;
            }
            for (s, d) in [(node, other), (other, node)] {
                let cur = self.get(s, d);
                if cur.err || cur.state != QpState::Rts || cur.path != port {
                    continue;
                }
                let alt = 1 - port;
                if self.apm && !self.port_down(s, alt) && !self.port_down(d, alt) {
                    self.dirs.entry((s, d)).or_default().path = alt;
                } else {
                    self.fail(s, d);
                }
            }
        }
    }

    fn port_up_event(&mut self, node: u32, port: u8) {
        self.down.insert((node, port), false);
    }
}

fn assert_equivalent(h: &Harness, o: &Oracle, round: usize) {
    for s in 0..N {
        for d in 0..N {
            if s == d {
                continue;
            }
            let want = o.get(s, d);
            assert_eq!(
                h.fabric.qp_state(s, d),
                want.state,
                "round {round}: qp_state({s},{d})"
            );
            assert_eq!(
                h.fabric.qp_errored(s, d),
                want.err,
                "round {round}: qp_errored({s},{d})"
            );
            assert_eq!(
                h.fabric.qp_epoch(s, d),
                want.epoch,
                "round {round}: qp_epoch({s},{d})"
            );
            assert_eq!(
                h.fabric.qp_port(s, d),
                want.path,
                "round {round}: qp_port({s},{d})"
            );
        }
    }
}

#[test]
fn dense_tables_match_hashmap_oracle_under_churn() {
    cases(0x0DE2_5E01, 48, |rng: &mut Rng| {
        // Retransmits must never exhaust the budget here: a
        // retry-exceeded QP error is an *internal* transition the
        // oracle does not model.
        let cfg = NetConfig {
            retry_cnt: 1000,
            ..NetConfig::default()
        };
        let apm = cfg.apm_enabled;
        let mut h = Harness {
            fabric: Fabric::new(N as usize, cfg),
            mems: (0..N).map(|_| NodeMem::new(16 << 20)).collect(),
            completions: 0,
        };
        let mut plan = FaultPlan::uniform(rng.next_u64(), 0.1).unwrap();
        plan.evict_rate = 0.0;
        h.fabric.set_fault_plan(plan);
        let mut o = Oracle::new(apm);

        // One registered source buffer and destination slab per node.
        let mut src = Vec::new();
        let mut dst = Vec::new();
        for node in 0..N as usize {
            let s = h.mems[node].space.alloc_page_aligned(4096).unwrap();
            let sreg = h.mems[node].regs.register(s, 4096);
            let d = h.mems[node].space.alloc_page_aligned(64 << 10).unwrap();
            let dreg = h.mems[node].regs.register(d, 64 << 10);
            src.push((s, sreg.lkey));
            dst.push((d, dreg.rkey));
        }

        let mut t: Time = 0;
        let mut wr_id = 0u64;
        for round in 0..16 {
            t += 200_000;
            let mut evs: Vec<(Time, NicEvent)> = Vec::new();

            // 0-2 random control-plane actions.
            for _ in 0..rng.range_usize(0, 3) {
                let s = rng.range_u64(0, N as u64) as u32;
                let d = (s + rng.range_u64(1, N as u64) as u32) % N;
                match rng.range_usize(0, 5) {
                    0 => {
                        let target = rng.pick(&[
                            QpState::Reset,
                            QpState::Init,
                            QpState::Rtr,
                            QpState::Rts,
                            QpState::Sqd,
                            QpState::Sqe,
                            QpState::Err,
                        ]);
                        let fab_legal = h
                            .fabric
                            .modify_qp(t, s, d, target, &mut |at, e| evs.push((at, e)))
                            .is_ok();
                        let ora_legal = o.modify(s, d, target);
                        assert_eq!(
                            fab_legal, ora_legal,
                            "round {round}: modify_qp({s},{d},{target:?}) legality"
                        );
                    }
                    1 => {
                        h.fabric.reset_qp(s, d);
                        o.reset(s, d);
                    }
                    2 => {
                        h.fabric.reestablish_qp(s, d);
                        o.reestablish(s, d);
                    }
                    3 => {
                        let port = rng.range_u64(0, 2) as u8;
                        let mut done = Vec::new();
                        h.fabric.handle(
                            t,
                            NicEvent::PortDown { node: s, port },
                            &mut h.mems,
                            &mut |at, e| evs.push((at, e)),
                            &mut done,
                        );
                        o.port_down_event(s, port);
                    }
                    _ => {
                        let port = rng.range_u64(0, 2) as u8;
                        let mut done = Vec::new();
                        h.fabric.handle(
                            t,
                            NicEvent::PortUp { node: s, port },
                            &mut h.mems,
                            &mut |at, e| evs.push((at, e)),
                            &mut done,
                        );
                        o.port_up_event(s, port);
                    }
                }
            }

            // Background traffic on pairs the oracle believes are
            // usable; the fault plan drops/corrupts/delays some of it,
            // exercising retransmit bookkeeping in the inflight slab.
            for _ in 0..rng.range_usize(0, 5) {
                let s = rng.range_u64(0, N as u64) as u32;
                let d = (s + rng.range_u64(1, N as u64) as u32) % N;
                let cur = o.get(s, d);
                if cur.err
                    || cur.state != QpState::Rts
                    || o.port_down(s, cur.path)
                    || o.port_down(d, cur.path)
                {
                    continue;
                }
                wr_id += 1;
                let len = rng.range_u64(1, 2048);
                let posted = h.fabric.post_send(
                    t + rng.range_u64(0, 1000),
                    s,
                    d,
                    SendWr {
                        wr_id,
                        opcode: Opcode::RdmaWrite,
                        sges: vec![Sge {
                            addr: src[s as usize].0,
                            len,
                            lkey: src[s as usize].1,
                        }]
                        .into(),
                        remote: Some((dst[d as usize].0, dst[d as usize].1)),
                        signaled: true,
                    },
                    &h.mems,
                    &mut |at, e| evs.push((at, e)),
                );
                assert!(
                    posted.is_ok(),
                    "round {round}: oracle-usable pair ({s},{d}) rejected a post: {posted:?}"
                );
            }

            let mut eng = Engine::new();
            for (at, e) in evs {
                eng.seed(at, e);
            }
            let end = eng.run_to_quiescence(&mut h, 1_000_000);
            t = t.max(end);

            assert_equivalent(&h, &o, round);
        }
    });
}
