//! Observational equivalence of the [`Transport`]-trait surface
//! against the inherent [`Fabric`] methods.
//!
//! The trait refactor must be invisible: `mpicore` now drives the IB
//! fabric through `&mut dyn Transport`, and every committed result
//! depends on that detour changing nothing. This suite runs randomized
//! verb scripts — posted receives, channel sends, RDMA writes (plain
//! and with immediate), RDMA reads, deliberate rkey violations,
//! capacity overruns and multi-SGE gathers — through two identical
//! fabrics, one via the inherent methods and one via the trait object,
//! and asserts the *observables* agree exactly: the full time-stamped
//! completion log, post-time errors, aggregate and per-node stats, CQ
//! high-water marks, receive-queue depths, transmit-engine busy time,
//! and the final bytes in every node's memory.

use ibdt_ibsim::{
    Cqe, Fabric, NetConfig, NicEvent, NodeMem, Opcode, PostError, RecvWr, SendWr, Sge, Transport,
    TransportClass,
};
use ibdt_simcore::engine::{Engine, Scheduler, World};
use ibdt_simcore::time::Time;
use ibdt_testkit::{cases, Rng};

const N: usize = 3;
const MEM: u64 = 1 << 20;

/// How the harness reaches the fabric: directly, or through the same
/// `&mut dyn Transport` vtable `mpicore` uses.
#[derive(Clone, Copy, PartialEq)]
enum Via {
    Inherent,
    Trait,
}

struct Harness {
    fabric: Fabric,
    mems: Vec<NodeMem>,
    log: Vec<(Time, u32, Cqe)>,
    via: Via,
}

impl World for Harness {
    type Event = NicEvent;
    fn handle(&mut self, sched: &mut Scheduler<'_, NicEvent>, ev: NicEvent) {
        let now = sched.now();
        let mut done = Vec::new();
        match self.via {
            Via::Inherent => self.fabric.handle(
                now,
                ev,
                &mut self.mems,
                &mut |t, e| sched.at(t, e),
                &mut done,
            ),
            Via::Trait => {
                let t: &mut dyn Transport = &mut self.fabric;
                t.handle(
                    now,
                    ev,
                    &mut self.mems,
                    &mut |t, e| sched.at(t, e),
                    &mut done,
                );
            }
        }
        for (node, cqe) in done {
            self.log.push((now, node, cqe));
        }
    }
}

impl Harness {
    fn new(via: Via) -> Self {
        Harness {
            fabric: Fabric::new(N, NetConfig::default()),
            mems: (0..N).map(|_| NodeMem::new(MEM)).collect(),
            log: Vec::new(),
            via,
        }
    }

    fn post_send(
        &mut self,
        at: Time,
        node: u32,
        peer: u32,
        wr: SendWr,
        sink: &mut Vec<(Time, NicEvent)>,
    ) -> Result<(), PostError> {
        match self.via {
            Via::Inherent => self
                .fabric
                .post_send(at, node, peer, wr, &self.mems, &mut |t, e| {
                    sink.push((t, e))
                }),
            Via::Trait => {
                let t: &mut dyn Transport = &mut self.fabric;
                t.post_send(at, node, peer, wr, &self.mems, &mut |t, e| {
                    sink.push((t, e))
                })
            }
        }
    }

    fn post_recv(
        &mut self,
        at: Time,
        node: u32,
        peer: u32,
        wr: RecvWr,
        sink: &mut Vec<(Time, NicEvent)>,
    ) -> Result<(), PostError> {
        match self.via {
            Via::Inherent => self
                .fabric
                .post_recv(at, node, peer, wr, &self.mems, &mut |t, e| {
                    sink.push((t, e))
                }),
            Via::Trait => {
                let t: &mut dyn Transport = &mut self.fabric;
                t.post_recv(at, node, peer, wr, &self.mems, &mut |t, e| {
                    sink.push((t, e))
                })
            }
        }
    }
}

/// One registered window per (node, role): sends gather from `src`,
/// receives/writes land in `dst`.
struct Bufs {
    src: Vec<(u64, u32)>,
    dst: Vec<(u64, u32, u32)>, // (addr, lkey == rkey source, rkey)
}

fn setup_bufs(h: &mut Harness) -> Bufs {
    let mut src = Vec::new();
    let mut dst = Vec::new();
    for node in 0..N {
        let s = h.mems[node].space.alloc_page_aligned(32 << 10).unwrap();
        for i in 0..(32 << 10) / 8u64 {
            h.mems[node]
                .space
                .write(s + i * 8, &(node as u64 ^ i).to_le_bytes())
                .unwrap();
        }
        let sreg = h.mems[node].regs.register(s, 32 << 10);
        let d = h.mems[node].space.alloc_page_aligned(32 << 10).unwrap();
        let dreg = h.mems[node].regs.register(d, 32 << 10);
        src.push((s, sreg.lkey));
        dst.push((d, dreg.lkey, dreg.rkey));
    }
    Bufs { src, dst }
}

/// Generates one randomized verb script as a list of closures applied
/// identically to both harnesses. Returns the number of post errors
/// observed (must match across harnesses too).
fn run_script(seed: u64, via: Via) -> (Harness, Vec<Time>, u64) {
    let mut rng = Rng::new(seed);
    let mut h = Harness::new(via);
    let bufs = setup_bufs(&mut h);
    let mut eng: Engine<Harness> = Engine::new();
    let mut seeded: Vec<(Time, NicEvent)> = Vec::new();
    let mut post_errors = 0u64;
    let mut t: Time = 0;
    let mut wr_id = 0u64;

    for _round in 0..8 {
        t = t.max(eng.now()) + 50_000;
        // A few receives on random directed pairs.
        for _ in 0..rng.range_usize(1, 4) {
            let node = rng.range_u64(0, N as u64) as u32;
            let peer = (node + rng.range_u64(1, N as u64) as u32) % N as u32;
            let (d, lkey, _) = bufs.dst[node as usize];
            wr_id += 1;
            let cap = rng.pick(&[256u64, 1024, 8192]);
            let wr = RecvWr {
                wr_id,
                sges: vec![Sge {
                    addr: d,
                    len: cap,
                    lkey,
                }]
                .into(),
            };
            let _ = h.post_recv(t, node, peer, wr, &mut seeded);
        }
        // A few sends with a mix of opcodes, sizes, and bad keys.
        for _ in 0..rng.range_usize(1, 5) {
            let node = rng.range_u64(0, N as u64) as u32;
            let peer = (node + rng.range_u64(1, N as u64) as u32) % N as u32;
            let (s, slkey) = bufs.src[node as usize];
            let (d, _, drkey) = bufs.dst[peer as usize];
            let len = rng.pick(&[64u64, 512, 2048, 16384]);
            let rkey = if rng.chance(0.15) { 0xdead } else { drkey };
            wr_id += 1;
            let opcode = match rng.range_usize(0, 4) {
                0 => Opcode::Send,
                1 => Opcode::RdmaWrite,
                2 => Opcode::RdmaWriteImm(wr_id as u32),
                _ => Opcode::RdmaRead,
            };
            let sges = if rng.chance(0.2) && len >= 128 {
                vec![
                    Sge {
                        addr: s,
                        len: len / 2,
                        lkey: slkey,
                    },
                    Sge {
                        addr: s + len / 2,
                        len: len - len / 2,
                        lkey: slkey,
                    },
                ]
            } else {
                vec![Sge {
                    addr: s,
                    len,
                    lkey: slkey,
                }]
            };
            let wr = SendWr {
                wr_id,
                opcode,
                sges: sges.into(),
                remote: Some((d, rkey)),
                signaled: true,
            };
            if h.post_send(t, node, peer, wr, &mut seeded).is_err() {
                post_errors += 1;
            }
        }
        // Drain this round before the next (matches how the progress
        // engine alternates posting and event handling).
        for (at, ev) in seeded.drain(..) {
            eng.seed(at, ev);
        }
        eng.run_to_quiescence(&mut h, 1_000_000);
    }

    // Snapshot every node's memory for the final comparison.
    let mut mem_sums = Vec::new();
    for node in 0..N {
        let bytes = h.mems[node].space.read(bufs.dst[node].0, 32 << 10).unwrap();
        let sum: u64 = bytes
            .iter()
            .enumerate()
            .map(|(i, b)| (*b as u64).wrapping_mul(i as u64 + 1))
            .fold(0u64, |a, x| a.wrapping_add(x));
        mem_sums.push(sum as Time);
    }
    (h, mem_sums, post_errors)
}

#[test]
fn trait_dispatch_is_observationally_equivalent() {
    cases(0x7EA17, 32, |rng: &mut Rng| {
        let seed = rng.next_u64();
        let (a, mem_a, err_a) = run_script(seed, Via::Inherent);
        let (b, mem_b, err_b) = run_script(seed, Via::Trait);

        assert_eq!(a.log, b.log, "completion logs diverge (seed {seed:#x})");
        assert_eq!(err_a, err_b, "post errors diverge (seed {seed:#x})");
        assert_eq!(mem_a, mem_b, "final memory diverges (seed {seed:#x})");
        assert_eq!(a.fabric.stats(), b.fabric.stats(), "stats (seed {seed:#x})");
        assert_eq!(
            a.fabric.node_stats(),
            b.fabric.node_stats(),
            "node stats (seed {seed:#x})"
        );
        for node in 0..N as u32 {
            assert_eq!(a.fabric.cq_peak(node), b.fabric.cq_peak(node));
            assert_eq!(
                a.fabric.tx_engine(node).total_busy(),
                b.fabric.tx_engine(node).total_busy()
            );
            assert_eq!(
                a.fabric.tx_engine(node).jobs(),
                b.fabric.tx_engine(node).jobs()
            );
            for peer in 0..N as u32 {
                if peer != node {
                    assert_eq!(a.fabric.recvq_len(node, peer), b.fabric.recvq_len(node, peer));
                    assert_eq!(a.fabric.qp_errored(node, peer), b.fabric.qp_errored(node, peer));
                }
            }
        }
    });
}

#[test]
fn trait_reports_ib_class_and_inert_faults() {
    let mut f = Fabric::new(2, NetConfig::default());
    let t: &mut dyn Transport = &mut f;
    assert_eq!(t.class(), TransportClass::Ib);
    assert!(!TransportClass::Ib.is_shm());
    assert!(TransportClass::ShmDouble.is_shm());
    assert!(TransportClass::ShmSingle.is_shm());
    assert!(!t.faults_active());
    assert!(t.fault_plan().is_none());
    assert!(t.fault_events().is_empty());
    assert!(!t.node_down(0));
    assert!(t.node_will_restart(1));
}
