//! Observational equivalence of the *paged* per-direction QP tables
//! against a HashMap-backed oracle, at a scale where paging is real.
//!
//! `dense_oracle.rs` pins down lifecycle semantics on a 4-node fabric
//! whose tables fit in one page. This suite re-runs the same churn —
//! modify/reset/reestablish, port down/up with APM, fault-plan traffic
//! with retransmits — on a fabric large enough that the `src * n + dst`
//! index space spans many pages, and confines activity to a sparse
//! subset of ranks. That exercises the failure modes paging can
//! introduce and a keyed map cannot:
//!
//! * a page materialized for one pair must not disturb its page
//!   neighbors (indices ±1 and across the page boundary),
//! * never-touched pairs must read as the defaults (RTS, no error,
//!   epoch 0, primary path) with **no** page materialized for them,
//! * table memory must track the touched pair count, not n².

use ibdt_ibsim::{Fabric, FaultPlan, NetConfig, NicEvent, NodeMem, Opcode, QpState, SendWr, Sge};
use ibdt_simcore::engine::{Engine, Scheduler, World};
use ibdt_simcore::time::Time;
use ibdt_testkit::{cases, Rng};
use std::collections::HashMap;

/// Large enough that `n * n` direction indices span hundreds of pages.
const N: u32 = 96;
/// The sparse active subset: every churn/traffic action draws its
/// endpoints from these ranks. Chosen to straddle page boundaries of
/// the `src * n + dst` index space (96·96/64 = 144 pages) and to
/// include adjacent rank pairs whose direction indices are neighbors.
const ACTIVE: [u32; 6] = [0, 1, 17, 18, 63, 95];

struct Harness {
    fabric: Fabric,
    mems: Vec<NodeMem>,
    completions: u64,
}

impl World for Harness {
    type Event = NicEvent;
    fn handle(&mut self, sched: &mut Scheduler<'_, NicEvent>, ev: NicEvent) {
        let now = sched.now();
        let mut done = Vec::new();
        self.fabric.handle(
            now,
            ev,
            &mut self.mems,
            &mut |t, e| sched.at(t, e),
            &mut done,
        );
        self.completions += done.len() as u64;
    }
}

#[derive(Clone, Copy, PartialEq, Debug)]
struct ODir {
    state: QpState,
    err: bool,
    epoch: u32,
    path: u8,
}

impl Default for ODir {
    fn default() -> Self {
        ODir {
            state: QpState::Rts,
            err: false,
            epoch: 0,
            path: 0,
        }
    }
}

struct Oracle {
    dirs: HashMap<(u32, u32), ODir>,
    down: HashMap<(u32, u8), bool>,
    apm: bool,
}

impl Oracle {
    fn new(apm: bool) -> Self {
        Oracle {
            dirs: HashMap::new(),
            down: HashMap::new(),
            apm,
        }
    }

    fn get(&self, s: u32, d: u32) -> ODir {
        self.dirs.get(&(s, d)).copied().unwrap_or_default()
    }

    fn port_down(&self, node: u32, port: u8) -> bool {
        self.down.get(&(node, port)).copied().unwrap_or(false)
    }

    fn fail(&mut self, s: u32, d: u32) {
        let e = self.dirs.entry((s, d)).or_default();
        if !e.err {
            e.err = true;
            e.state = QpState::Err;
        }
    }

    fn reset(&mut self, s: u32, d: u32) {
        let port = [0u8, 1]
            .into_iter()
            .find(|&p| !self.port_down(s, p) && !self.port_down(d, p))
            .unwrap_or(0);
        let e = self.dirs.entry((s, d)).or_default();
        e.err = false;
        e.state = QpState::Reset;
        e.epoch += 1;
        e.path = port;
    }

    fn reestablish(&mut self, s: u32, d: u32) {
        self.reset(s, d);
        self.dirs.get_mut(&(s, d)).unwrap().state = QpState::Rts;
    }

    fn modify(&mut self, s: u32, d: u32, target: QpState) -> bool {
        let from = self.get(s, d).state;
        let legal = matches!(
            (from, target),
            (QpState::Reset, QpState::Init)
                | (QpState::Init, QpState::Rtr)
                | (QpState::Rtr, QpState::Rts)
                | (QpState::Rts, QpState::Sqd)
                | (QpState::Sqd, QpState::Rts)
                | (QpState::Sqe, QpState::Rts)
                | (_, QpState::Err)
                | (_, QpState::Reset)
        );
        if !legal {
            return false;
        }
        match target {
            QpState::Err => self.fail(s, d),
            QpState::Reset => self.reset(s, d),
            other => self.dirs.entry((s, d)).or_default().state = other,
        }
        true
    }

    /// A port-down fans out over *all* pairs touching the node, exactly
    /// as the fabric's handler does — including pairs whose direction
    /// state was never materialized (their default path is 0).
    fn port_down_event(&mut self, node: u32, port: u8) {
        self.down.insert((node, port), true);
        for other in 0..N {
            if other == node {
                continue;
            }
            for (s, d) in [(node, other), (other, node)] {
                let cur = self.get(s, d);
                if cur.err || cur.state != QpState::Rts || cur.path != port {
                    continue;
                }
                let alt = 1 - port;
                if self.apm && !self.port_down(s, alt) && !self.port_down(d, alt) {
                    self.dirs.entry((s, d)).or_default().path = alt;
                } else {
                    self.fail(s, d);
                }
            }
        }
    }

    fn port_up_event(&mut self, node: u32, port: u8) {
        self.down.insert((node, port), false);
    }
}

/// Compares every directional pair — active, neighbor, and untouched —
/// against the oracle.
fn assert_equivalent(h: &Harness, o: &Oracle, round: usize) {
    for s in 0..N {
        for d in 0..N {
            if s == d {
                continue;
            }
            let want = o.get(s, d);
            assert_eq!(
                h.fabric.qp_state(s, d),
                want.state,
                "round {round}: qp_state({s},{d})"
            );
            assert_eq!(
                h.fabric.qp_errored(s, d),
                want.err,
                "round {round}: qp_errored({s},{d})"
            );
            assert_eq!(
                h.fabric.qp_epoch(s, d),
                want.epoch,
                "round {round}: qp_epoch({s},{d})"
            );
            assert_eq!(
                h.fabric.qp_port(s, d),
                want.path,
                "round {round}: qp_port({s},{d})"
            );
        }
    }
}

fn pick_pair(rng: &mut Rng) -> (u32, u32) {
    let s = rng.pick(&ACTIVE);
    loop {
        let d = rng.pick(&ACTIVE);
        if d != s {
            return (s, d);
        }
    }
}

#[test]
fn paged_tables_match_hashmap_oracle_under_sparse_churn() {
    cases(0x9A6E_D001, 24, |rng: &mut Rng| {
        let cfg = NetConfig {
            retry_cnt: 1000,
            ..NetConfig::default()
        };
        let apm = cfg.apm_enabled;
        let mut h = Harness {
            fabric: Fabric::new(N as usize, cfg),
            mems: (0..N).map(|_| NodeMem::new(4 << 20)).collect(),
            completions: 0,
        };
        let mut plan = FaultPlan::uniform(rng.next_u64(), 0.1).unwrap();
        plan.evict_rate = 0.0;
        h.fabric.set_fault_plan(plan);
        let mut o = Oracle::new(apm);

        // Registered source/destination buffers only on active ranks.
        type BufPair = ((u64, u32), (u64, u32));
        let mut bufs: HashMap<u32, BufPair> = HashMap::new();
        for &node in &ACTIVE {
            let m = &mut h.mems[node as usize];
            let s = m.space.alloc_page_aligned(4096).unwrap();
            let sreg = m.regs.register(s, 4096);
            let d = m.space.alloc_page_aligned(64 << 10).unwrap();
            let dreg = m.regs.register(d, 64 << 10);
            bufs.insert(node, ((s, sreg.lkey), (d, dreg.rkey)));
        }

        let mut t: Time = 0;
        let mut wr_id = 0u64;
        for round in 0..10 {
            t += 200_000;
            let mut evs: Vec<(Time, NicEvent)> = Vec::new();

            for _ in 0..rng.range_usize(0, 3) {
                let (s, d) = pick_pair(rng);
                match rng.range_usize(0, 5) {
                    0 => {
                        let target = rng.pick(&[
                            QpState::Reset,
                            QpState::Init,
                            QpState::Rtr,
                            QpState::Rts,
                            QpState::Sqd,
                            QpState::Sqe,
                            QpState::Err,
                        ]);
                        let fab_legal = h
                            .fabric
                            .modify_qp(t, s, d, target, &mut |at, e| evs.push((at, e)))
                            .is_ok();
                        let ora_legal = o.modify(s, d, target);
                        assert_eq!(
                            fab_legal, ora_legal,
                            "round {round}: modify_qp({s},{d},{target:?}) legality"
                        );
                    }
                    1 => {
                        h.fabric.reset_qp(s, d);
                        o.reset(s, d);
                    }
                    2 => {
                        h.fabric.reestablish_qp(s, d);
                        o.reestablish(s, d);
                    }
                    3 => {
                        let port = rng.range_u64(0, 2) as u8;
                        let mut done = Vec::new();
                        h.fabric.handle(
                            t,
                            NicEvent::PortDown { node: s, port },
                            &mut h.mems,
                            &mut |at, e| evs.push((at, e)),
                            &mut done,
                        );
                        o.port_down_event(s, port);
                    }
                    _ => {
                        let port = rng.range_u64(0, 2) as u8;
                        let mut done = Vec::new();
                        h.fabric.handle(
                            t,
                            NicEvent::PortUp { node: s, port },
                            &mut h.mems,
                            &mut |at, e| evs.push((at, e)),
                            &mut done,
                        );
                        o.port_up_event(s, port);
                    }
                }
            }

            for _ in 0..rng.range_usize(0, 5) {
                let (s, d) = pick_pair(rng);
                let cur = o.get(s, d);
                if cur.err
                    || cur.state != QpState::Rts
                    || o.port_down(s, cur.path)
                    || o.port_down(d, cur.path)
                {
                    continue;
                }
                wr_id += 1;
                let len = rng.range_u64(1, 2048);
                let (src, _) = bufs[&s];
                let (_, dst) = bufs[&d];
                let posted = h.fabric.post_send(
                    t + rng.range_u64(0, 1000),
                    s,
                    d,
                    SendWr {
                        wr_id,
                        opcode: Opcode::RdmaWrite,
                        sges: vec![Sge {
                            addr: src.0,
                            len,
                            lkey: src.1,
                        }]
                        .into(),
                        remote: Some((dst.0, dst.1)),
                        signaled: true,
                    },
                    &h.mems,
                    &mut |at, e| evs.push((at, e)),
                );
                assert!(
                    posted.is_ok(),
                    "round {round}: oracle-usable pair ({s},{d}) rejected a post: {posted:?}"
                );
            }

            let mut eng = Engine::new();
            for (at, e) in evs {
                eng.seed(at, e);
            }
            let end = eng.run_to_quiescence(&mut h, 1_000_000);
            t = t.max(end);

            assert_equivalent(&h, &o, round);
        }

        // No sparsity bound here: an APM port-down fans a write into
        // every direction touching the node — the column directions
        // land one-per-page — so page counts legitimately approach the
        // dense total under port churn. The tight bound lives in
        // `fabric_memory_sublinear_in_rank_count_squared`, which runs
        // traffic without control-plane fan-out.
    });
}

/// A quiet large fabric holds (almost) no per-pair memory, and a ring
/// pattern's footprint grows with touched pairs — not ranks².
#[test]
fn fabric_memory_sublinear_in_rank_count_squared() {
    let n = 1024usize;
    let mut fabric = Fabric::new(n, NetConfig::default());
    let mut mems: Vec<NodeMem> = (0..n).map(|_| NodeMem::new(1 << 20)).collect();
    let untouched = fabric.table_bytes();
    // The dense layout stored n² DirState entries (≥ 64 B each) plus
    // 3·n² VecDeques; even counting DirState alone that is ~64 MiB at
    // n = 1024. An idle paged fabric must be orders of magnitude below.
    assert!(
        untouched < 1 << 20,
        "idle 1024-rank fabric holds {untouched} table bytes"
    );

    // Ring traffic: each rank posts one write to its right neighbor.
    let mut bufs = Vec::new();
    for m in mems.iter_mut() {
        let s = m.space.alloc_page_aligned(4096).unwrap();
        let sreg = m.regs.register(s, 4096);
        let d = m.space.alloc_page_aligned(4096).unwrap();
        let dreg = m.regs.register(d, 4096);
        bufs.push(((s, sreg.lkey), (d, dreg.rkey)));
    }
    let mut evs: Vec<(Time, NicEvent)> = Vec::new();
    for r in 0..n as u32 {
        let peer = (r + 1) % n as u32;
        let (src, _) = bufs[r as usize];
        let (_, dst) = bufs[peer as usize];
        fabric
            .post_send(
                0,
                r,
                peer,
                SendWr {
                    wr_id: r as u64,
                    opcode: Opcode::RdmaWrite,
                    sges: vec![Sge {
                        addr: src.0,
                        len: 256,
                        lkey: src.1,
                    }]
                    .into(),
                    remote: Some((dst.0, dst.1)),
                    signaled: true,
                },
                &mems,
                &mut |at, e| evs.push((at, e)),
            )
            .unwrap();
    }
    let mut h = Harness {
        fabric,
        mems,
        completions: 0,
    };
    let mut eng = Engine::new();
    for (at, e) in evs {
        eng.seed(at, e);
    }
    eng.run_to_quiescence(&mut h, u64::MAX);
    assert_eq!(h.completions, n as u64, "every ring write completes");

    // n touched directions over a PAGE-grained table: the footprint
    // must sit well under a quarter of the dense n² layout.
    let per_dir = std::mem::size_of::<ibdt_ibsim::QpState>().max(64);
    let dense_estimate = n * n * per_dir;
    let paged = h.fabric.table_bytes();
    assert!(
        paged < dense_estimate / 4,
        "ring on {n} ranks: paged {paged} B vs dense ~{dense_estimate} B"
    );
}
