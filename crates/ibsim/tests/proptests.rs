//! Randomized tests of the fabric: exact-once delivery and RC per-QP
//! ordering under random traffic. Seeded via [`ibdt_testkit`] so every
//! case is replayable offline.

use ibdt_ibsim::{Fabric, NetConfig, NicEvent, NodeMem, Opcode, SendWr, Sge};
use ibdt_simcore::engine::{Engine, Scheduler, World};
use ibdt_simcore::time::Time;
use ibdt_testkit::{cases, Rng};

struct Harness {
    fabric: Fabric,
    mems: Vec<NodeMem>,
    completions: Vec<(Time, u32, u64)>, // (time, node, wr_id)
}

impl World for Harness {
    type Event = NicEvent;
    fn handle(&mut self, sched: &mut Scheduler<'_, NicEvent>, ev: NicEvent) {
        let now = sched.now();
        let mut done = Vec::new();
        self.fabric.handle(
            now,
            ev,
            &mut self.mems,
            &mut |t, e| sched.at(t, e),
            &mut done,
        );
        for (node, cqe) in done {
            assert!(cqe.status.is_ok(), "unexpected error completion");
            self.completions.push((now, node, cqe.wr_id));
        }
    }
}

/// Random RDMA writes between 3 nodes: every payload lands exactly
/// once at its slot, and local completions per (src, dst) pair come
/// back in post order.
#[test]
fn writes_deliver_exactly_once_in_order() {
    cases(0x1B51_0001, 64, |rng: &mut Rng| {
        let n = 3;
        let mut h = Harness {
            fabric: Fabric::new(n, NetConfig::default()),
            mems: (0..n).map(|_| NodeMem::new(64 << 20)).collect(),
            completions: Vec::new(),
        };
        // One source buffer and one big slot array per node.
        let mut src = Vec::new();
        let mut dst = Vec::new();
        for node in 0..n {
            let s = h.mems[node].space.alloc_page_aligned(4096).unwrap();
            let sreg = h.mems[node].regs.register(s, 4096);
            let d = h.mems[node].space.alloc_page_aligned(1 << 20).unwrap();
            let dreg = h.mems[node].regs.register(d, 1 << 20);
            src.push((s, sreg.lkey));
            dst.push((d, dreg.rkey));
        }
        let nops = rng.range_usize(1, 80);
        let mut evs: Vec<(Time, NicEvent)> = Vec::new();
        let mut slot = 0u64;
        let mut expected: Vec<(usize, u64, u8)> = Vec::new(); // (dst node, slot addr, byte)
        let mut posted_per_pair: std::collections::HashMap<(u32, u32), Vec<u64>> =
            std::collections::HashMap::new();
        for i in 0..nops {
            let s = rng.range_u64(0, 3) as u32;
            let d = rng.range_u64(0, 3) as u32;
            let at = rng.range_u64(0, 5_000);
            let len = rng.range_u64(1, 3000);
            if s == d {
                continue;
            }
            let byte = (i % 251) as u8 + 1;
            h.mems[s as usize]
                .space
                .fill(src[s as usize].0, len, byte)
                .unwrap();
            let target = dst[d as usize].0 + slot * 4096;
            let wr_id = i as u64;
            let posted = h.fabric.post_send(
                at,
                s,
                d,
                SendWr {
                    wr_id,
                    opcode: Opcode::RdmaWrite,
                    sges: vec![Sge {
                        addr: src[s as usize].0,
                        len,
                        lkey: src[s as usize].1,
                    }]
                    .into(),
                    remote: Some((target, dst[d as usize].1)),
                    signaled: true,
                },
                &h.mems,
                &mut |t, e| evs.push((t, e)),
            );
            assert!(posted.is_ok());
            // Snapshot semantics: data is captured at post time, so each
            // op uses its own fill value and slot.
            expected.push((d as usize, target, byte));
            posted_per_pair.entry((s, d)).or_default().push(wr_id);
            slot += 1;
            assert!(slot * 4096 + 4096 <= 1 << 20);
        }
        let mut eng = Engine::new();
        for (t, e) in evs {
            eng.seed(t, e);
        }
        eng.run_to_quiescence(&mut h, 1_000_000);

        // Exactly-once placement (first byte of each slot; slots are
        // distinct so no op can mask another).
        for &(d, addr, byte) in &expected {
            let got = h.mems[d].space.read(addr, 1).unwrap()[0];
            assert_eq!(got, byte, "slot {addr:#x} at node {d}");
        }
        // One completion per op.
        assert_eq!(h.completions.len(), expected.len());
        // Per-pair completion order == post order. Completion (node,
        // wr_id) pairs: node is the poster.
        for ((s, _d), wrs) in posted_per_pair {
            let seen: Vec<u64> = h
                .completions
                .iter()
                .filter(|(_, node, wr)| *node == s && wrs.contains(wr))
                .map(|&(_, _, wr)| wr)
                .collect();
            assert_eq!(seen, wrs, "completion order per pair");
        }
    });
}
