#![warn(missing_docs)]
//! Deterministic test support with zero dependencies.
//!
//! The workspace builds in fully offline environments, so the
//! randomized test suites cannot pull in `proptest` or `rand`.
//! This crate provides the small surface they actually need:
//!
//! - [`Rng`]: a seeded SplitMix64 generator with range, boolean,
//!   choice, shuffle, and byte-fill helpers. Identical seeds produce
//!   identical streams on every platform — the determinism the chaos
//!   suite asserts on.
//! - [`cases`]: a seeded-case harness that runs a closure over `n`
//!   derived seeds and reports the failing seed, so a failure is
//!   reproducible with a one-line unit test.
//! - [`shrink`] / [`shrink_report`]: a delta-debugging minimizer for
//!   failing event lists (fault plans, operation sequences): halving
//!   passes followed by single-event removal, repeated to a fixed
//!   point, so a chaos failure is reported as the smallest event list
//!   that still reproduces it.

/// Seeded deterministic random generator (SplitMix64).
///
/// SplitMix64 passes BigCrush, needs only a `u64` of state, and is
/// trivially portable — more than enough to drive test-case
/// generation and fault-plan sampling.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from `seed`. Identical seeds yield
    /// identical streams.
    pub fn new(seed: u64) -> Self {
        // Pre-mix so that small consecutive seeds (0, 1, 2, ...) do
        // not produce correlated leading outputs.
        let mut r = Rng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        };
        r.next_u64();
        r
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32-bit output.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[lo, hi)`. Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = hi - lo;
        // Multiply-shift bounded generation (Lemire); the tiny bias is
        // irrelevant for test generation and keeps this branch-free.
        let wide = (self.next_u64() as u128) * (span as u128);
        lo + (wide >> 64) as u64
    }

    /// Uniform value in `[lo, hi)` over signed integers.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let span = (hi as i128 - lo as i128) as u64;
        let off = self.range_u64(0, span);
        (lo as i128 + off as i128) as i64
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // Compare against a 53-bit uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }

    /// Uniform element reference from a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.range_usize(0, items.len())]
    }

    /// Uniform copy from a non-empty slice.
    pub fn pick<T: Copy>(&mut self, items: &[T]) -> T {
        *self.choose(items)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range_usize(0, i + 1);
            items.swap(i, j);
        }
    }

    /// Fills `buf` with pseudo-random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }

    /// Derives an independent generator (for sub-streams that must not
    /// perturb the parent's sequence).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

/// Base seed for a chaos suite: `default`, unless the
/// `IBDT_CHAOS_SEED` environment variable overrides it.
///
/// The variable accepts decimal (`12345`) or `0x`-prefixed hex
/// (`0xC4A00001`); an unparsable value panics rather than silently
/// running the default matrix. This is how a CI failure is replayed
/// locally: the harness prints the failing base seed, and
/// `IBDT_CHAOS_SEED=<that> cargo test` reruns the exact fault plans.
pub fn chaos_seed(default: u64) -> u64 {
    match std::env::var("IBDT_CHAOS_SEED") {
        Err(_) => default,
        Ok(s) => {
            let s = s.trim();
            let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                u64::from_str_radix(hex, 16)
            } else {
                s.parse()
            };
            parsed.unwrap_or_else(|e| panic!("IBDT_CHAOS_SEED={s:?} is not a u64: {e}"))
        }
    }
}

/// Runs `f` once per derived seed, `n` times, panicking with the
/// failing case index and seed on the first failure.
///
/// The closure receives a fresh [`Rng`] per case; to replay case `i`
/// in isolation, call `f(&mut Rng::new(seed_for(base_seed, i)))`, or
/// rerun the whole suite with `IBDT_CHAOS_SEED=<base>` when the suite
/// derives its base seed through [`chaos_seed`].
pub fn cases<F: FnMut(&mut Rng)>(base_seed: u64, n: u32, mut f: F) {
    for i in 0..n {
        let seed = seed_for(base_seed, i);
        let mut rng = Rng::new(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&mut rng)));
        if let Err(payload) = outcome {
            eprintln!("testkit: case {i} of {n} failed (seed {seed:#x}, base {base_seed:#x})");
            eprintln!("testkit: set IBDT_CHAOS_SEED={base_seed:#x} to reproduce this suite");
            std::panic::resume_unwind(payload);
        }
    }
}

/// The per-case seed used by [`cases`], exposed for replaying a single
/// failing case.
pub fn seed_for(base_seed: u64, case: u32) -> u64 {
    Rng::new(base_seed ^ ((case as u64) << 32 | 0x5EED)).next_u64()
}

/// Result of a [`shrink_report`] run.
#[derive(Debug, Clone)]
pub struct ShrinkReport<T> {
    /// The minimal failing event list: removing any single remaining
    /// event makes the predicate pass (1-minimality).
    pub minimal: Vec<T>,
    /// Events in the original failing list.
    pub initial: usize,
    /// Predicate evaluations spent, including the initial check.
    pub probes: u64,
}

impl<T> ShrinkReport<T> {
    /// One-line human summary for failure messages.
    pub fn summary(&self) -> String {
        format!(
            "shrunk {} -> {} events in {} probes",
            self.initial,
            self.minimal.len(),
            self.probes
        )
    }
}

/// Minimizes a failing event list: returns the smallest sublist (in
/// original order) on which `fails` still returns `true`.
///
/// `fails` must be deterministic — it is the reproducer (typically
/// "rerun the simulation with this fault plan and check the bad
/// outcome still happens"). The input itself must fail; this is
/// asserted, because "minimize a passing input" is always a bug in
/// the harness.
///
/// The strategy is greedy delta debugging: try to delete chunks of
/// half the list, then quarters, and so on down to single events,
/// repeating the single-event pass until no event can be removed. The
/// result is 1-minimal; like all ddmin variants it can miss smaller
/// non-contiguous subsets, which is the standard trade for a probe
/// count linear-ish in the list length rather than exponential.
pub fn shrink<T: Clone>(input: &[T], fails: impl FnMut(&[T]) -> bool) -> Vec<T> {
    shrink_report(input, fails).minimal
}

/// [`shrink`], also reporting probe-count statistics for harness logs.
pub fn shrink_report<T: Clone>(
    input: &[T],
    mut fails: impl FnMut(&[T]) -> bool,
) -> ShrinkReport<T> {
    let mut probes = 1u64;
    assert!(
        fails(input),
        "shrink needs a failing input (the full list must reproduce)"
    );
    let mut cur = input.to_vec();
    let mut chunk = (cur.len() / 2).max(1);
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while i < cur.len() {
            let end = (i + chunk).min(cur.len());
            let mut cand = Vec::with_capacity(cur.len() - (end - i));
            cand.extend_from_slice(&cur[..i]);
            cand.extend_from_slice(&cur[end..]);
            probes += 1;
            if fails(&cand) {
                // The chunk was irrelevant; drop it and retry the same
                // position, which now holds the next chunk.
                cur = cand;
                shrunk = true;
            } else {
                i = end;
            }
        }
        if chunk > 1 {
            chunk /= 2;
        } else if !shrunk {
            break;
        }
    }
    ShrinkReport {
        minimal: cur,
        initial: input.len(),
        probes,
    }
}

/// A counting wrapper around the system allocator.
///
/// Install it as the global allocator in a bench or test binary to
/// measure heap traffic:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: ibdt_testkit::CountingAlloc = ibdt_testkit::CountingAlloc;
/// ```
///
/// [`CountingAlloc::allocations`] returns the number of allocation
/// events (alloc, alloc_zeroed, and growing reallocs) since process
/// start; diff two readings around a region to count its allocations.
/// The counter is a single relaxed atomic — cheap enough to leave on
/// for every benchmark run, and exact because the simulator's hot
/// paths are single-threaded.
pub struct CountingAlloc;

static ALLOCATIONS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl CountingAlloc {
    /// Allocation events since process start.
    pub fn allocations() -> u64 {
        ALLOCATIONS.load(std::sync::atomic::Ordering::Relaxed)
    }
}

// SAFETY: defers entirely to `System`; the count is side-band.
unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::alloc::System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: std::alloc::Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::alloc::System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::alloc::System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        std::alloc::System.dealloc(ptr, layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_seeds_identical_streams() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            let v = r.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let s = r.range_i64(-5, 3);
            assert!((-5..3).contains(&s));
        }
    }

    #[test]
    fn range_hits_every_value() {
        let mut r = Rng::new(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.range_usize(0, 8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(9);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2000..4000).contains(&hits), "p=0.3 produced {hits}/10000");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_deterministic() {
        let mut a = [0u8; 37];
        let mut b = [0u8; 37];
        Rng::new(5).fill_bytes(&mut a);
        Rng::new(5).fill_bytes(&mut b);
        assert_eq!(a, b);
        assert!(a.iter().any(|&x| x != 0));
    }

    #[test]
    #[should_panic(expected = "boom on case 3")]
    fn cases_propagates_failure() {
        let mut i = 0;
        cases(0xDEAD, 10, |_| {
            if i == 3 {
                panic!("boom on case 3");
            }
            i += 1;
        });
    }

    #[test]
    fn chaos_seed_env_override() {
        // Single test owning the variable — keep all assertions here so
        // parallel test threads never race on the process environment.
        std::env::remove_var("IBDT_CHAOS_SEED");
        assert_eq!(chaos_seed(7), 7);
        std::env::set_var("IBDT_CHAOS_SEED", "0xDEAD");
        assert_eq!(chaos_seed(7), 0xDEAD);
        std::env::set_var("IBDT_CHAOS_SEED", "12345");
        assert_eq!(chaos_seed(7), 12345);
        std::env::remove_var("IBDT_CHAOS_SEED");
    }

    #[test]
    fn cases_seeds_are_replayable() {
        let mut first = Vec::new();
        cases(77, 4, |rng| first.push(rng.next_u64()));
        for (i, &v) in first.iter().enumerate() {
            assert_eq!(Rng::new(seed_for(77, i as u32)).next_u64(), v);
        }
    }

    #[test]
    fn shrink_finds_conjunctive_minimum() {
        // Fails iff both 3 and 7 are present: the minimal reproducer
        // is exactly [3, 7], whatever noise surrounds them.
        let noisy: Vec<u32> = vec![9, 1, 3, 4, 4, 2, 7, 8, 0, 5, 6, 12, 11];
        let report = shrink_report(&noisy, |s| s.contains(&3) && s.contains(&7));
        assert_eq!(report.minimal, vec![3, 7]);
        assert_eq!(report.initial, noisy.len());
        assert!(report.probes > 1);
        assert!(report.summary().contains("-> 2 events"));
    }

    #[test]
    fn shrink_finds_single_culprit() {
        let noisy: Vec<u32> = (0..100).collect();
        let minimal = shrink(&noisy, |s| s.contains(&83));
        assert_eq!(minimal, vec![83]);
    }

    #[test]
    fn shrink_keeps_order_and_is_one_minimal() {
        // Fails iff it contains at least 3 even numbers; the minimum
        // is any 3 evens, in their original relative order.
        let noisy: Vec<u32> = vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        let minimal = shrink(&noisy, |s| s.iter().filter(|v| *v % 2 == 0).count() >= 3);
        assert_eq!(minimal.len(), 3);
        assert!(minimal.iter().all(|v| v % 2 == 0));
        let mut sorted = minimal.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, minimal, "original order must be preserved");
        // 1-minimality: removing any remaining event must pass.
        for i in 0..minimal.len() {
            let mut cand = minimal.clone();
            cand.remove(i);
            assert!(cand.iter().filter(|v| *v % 2 == 0).count() < 3);
        }
    }

    #[test]
    fn shrink_can_reach_empty() {
        // A predicate that always fails shrinks to the empty list —
        // the failure was never input-dependent.
        let minimal = shrink(&[1, 2, 3], |_| true);
        assert!(minimal.is_empty());
    }

    #[test]
    #[should_panic(expected = "failing input")]
    fn shrink_rejects_passing_input() {
        shrink(&[1, 2, 3], |_| false);
    }
}
