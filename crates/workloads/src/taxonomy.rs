//! The datatype taxonomy of the DDT-vs-manual-pack study (figure x17,
//! after "Do MPI Derived Datatypes Actually Help?", arXiv:2511.13804):
//! one representative constructor per family, each parameterized by
//! total data size so the same class can be swept across message
//! sizes on every transport.
//!
//! Layout invariants, relied on by the figure's crossover logic:
//!
//! * every type carries exactly `size` data bytes,
//! * the noncontiguous classes keep ~128 contiguous blocks, so the
//!   *block* size grows linearly with the message size and sweeps
//!   across the adaptive selector's per-transport thresholds
//!   (`adaptive_multiw_block` on IB, `adaptive_shm_multiw_block` on
//!   shm single-copy).

use ibdt_datatype::Datatype;

/// The five constructor families of the x17 comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DtClass {
    /// `MPI_Type_contiguous`: the degenerate case, nothing to pack.
    Contig,
    /// Strided vector, the paper's motivating matrix-column type.
    Vector,
    /// Irregular `hindexed` blocks of two alternating widths.
    Indexed,
    /// Heterogeneous `struct` mixing int and double fields with gaps.
    Struct,
    /// `resized` unit replicated by `contiguous` — a strided layout
    /// spelled through an extent override.
    Resized,
}

/// All classes, in figure column order.
pub const ALL_CLASSES: [DtClass; 5] = [
    DtClass::Contig,
    DtClass::Vector,
    DtClass::Indexed,
    DtClass::Struct,
    DtClass::Resized,
];

impl DtClass {
    /// Short column label.
    pub fn short(self) -> &'static str {
        match self {
            DtClass::Contig => "ctg",
            DtClass::Vector => "vec",
            DtClass::Indexed => "idx",
            DtClass::Struct => "str",
            DtClass::Resized => "rsz",
        }
    }
}

/// Builds the representative type of `class` carrying exactly `size`
/// data bytes. `size` must be a multiple of 1024 and at least 4 KiB
/// so every family divides evenly.
pub fn build(class: DtClass, size: u64) -> Datatype {
    assert!(
        size >= 4096 && size.is_multiple_of(1024),
        "size {size} unsupported"
    );
    let byte = Datatype::byte();
    match class {
        DtClass::Contig => Datatype::contiguous(size, &byte).expect("contig"),
        DtClass::Vector => {
            // 128 rows of size/128 bytes, stride twice the block.
            let blk = size / 128;
            Datatype::hvector(128, blk, 2 * blk as i64, &byte).expect("vector")
        }
        DtClass::Indexed => {
            // 64 groups of one wide and two narrow blocks with
            // block-sized gaps: 64·(size/128) + 128·(size/256) = size.
            let a = size / 128;
            let b = size / 256;
            let mut blocks = Vec::with_capacity(192);
            let mut d: i64 = 0;
            for _ in 0..64 {
                blocks.push((a, d));
                d += (a + b) as i64;
                blocks.push((b, d));
                d += 2 * b as i64;
                blocks.push((b, d));
                d += (b + a) as i64;
            }
            Datatype::hindexed(&blocks, &byte).expect("indexed")
        }
        DtClass::Struct => {
            // 64 units of an int block and a double block, each
            // size/128 bytes, separated by half-block gaps.
            let blk = size / 128;
            let mut fields = Vec::with_capacity(128);
            let mut d: i64 = 0;
            for _ in 0..64 {
                fields.push((blk / 4, d, Datatype::int()));
                d += (blk + blk / 2) as i64;
                fields.push((blk / 8, d, Datatype::double()));
                d += (blk + blk / 2) as i64;
            }
            Datatype::struct_(&fields).expect("struct")
        }
        DtClass::Resized => {
            // A contiguous block resized to double extent, replicated:
            // the canonicalizer sees a vector spelled differently.
            let blk = size / 128;
            let unit = Datatype::contiguous(blk, &byte).expect("unit");
            let unit = Datatype::resized(&unit, 0, 2 * blk as i64).expect("resized");
            Datatype::contiguous(128, &unit).expect("replicate")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_class_carries_exact_size() {
        for size in [4096u64, 65536, 1 << 20] {
            for class in ALL_CLASSES {
                let t = build(class, size);
                assert_eq!(t.size(), size, "{class:?} at {size}");
            }
        }
    }

    #[test]
    fn noncontig_classes_keep_block_count() {
        for class in [
            DtClass::Vector,
            DtClass::Indexed,
            DtClass::Struct,
            DtClass::Resized,
        ] {
            let t = build(class, 128 << 10);
            let n = t.num_blocks();
            assert!(
                (128..=192).contains(&n),
                "{class:?}: {n} blocks, expected 128..=192"
            );
            assert!(!t.is_contiguous(), "{class:?} must be noncontiguous");
        }
        assert!(build(DtClass::Contig, 128 << 10).is_contiguous());
    }

    #[test]
    fn block_size_scales_with_message_size() {
        let small = build(DtClass::Vector, 8 << 10);
        let large = build(DtClass::Vector, 2 << 20);
        let blk = |t: &Datatype| t.flat().blocks[0].1;
        assert_eq!(blk(&small), 64);
        assert_eq!(blk(&large), 16 << 10);
    }
}
