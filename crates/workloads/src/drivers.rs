//! Measurement drivers: ping-pong latency, windowed bandwidth,
//! collective timing, and the Fig. 2 `Manual` / `Multiple` / `Contig`
//! comparison schemes.
//!
//! Every driver verifies data correctness as part of the measurement —
//! a scheme that corrupted bytes would fail the benchmark, not just
//! mis-report it.

use crate::vector::VectorWorkload;
use ibdt_datatype::Datatype;
use ibdt_mpicore::{AppOp, Cluster, ClusterSpec, Program, RunStats};
use ibdt_simcore::time::{transfer_ns, Time};

/// Result of a ping-pong latency measurement.
#[derive(Debug)]
pub struct PingPongResult {
    /// One-way latency (half the round trip), averaged over the
    /// measured iterations.
    pub one_way_ns: Time,
    /// Full run statistics.
    pub stats: RunStats,
}

/// Result of a windowed bandwidth measurement.
#[derive(Debug)]
pub struct BandwidthResult {
    /// Achieved bandwidth in bytes per second (decimal).
    pub bytes_per_sec: f64,
    /// Virtual time of the measured window.
    pub interval_ns: Time,
    /// Full run statistics.
    pub stats: RunStats,
}

fn alloc_buffers(cluster: &mut Cluster, ty: &Datatype, count: u64) -> (u64, u64, u64) {
    let span = ((count.saturating_sub(1)) as i64 * ty.extent() + ty.true_ub()).max(8) as u64 + 64;
    let b0 = cluster.alloc(0, span, 4096);
    let b1 = cluster.alloc(1, span, 4096);
    cluster.fill_pattern(0, b0, span, 13);
    (b0, b1, span)
}

/// Like [`alloc_buffers`], but both user buffers are device-resident:
/// pack/unpack touching them routes through the DMA cost model.
fn alloc_device_buffers(cluster: &mut Cluster, ty: &Datatype, count: u64) -> (u64, u64, u64) {
    let span = ((count.saturating_sub(1)) as i64 * ty.extent() + ty.true_ub()).max(8) as u64 + 64;
    let b0 = cluster.alloc_device(0, span, 4096);
    let b1 = cluster.alloc_device(1, span, 4096);
    cluster.fill_pattern(0, b0, span, 13);
    (b0, b1, span)
}

fn verify(cluster: &Cluster, ty: &Datatype, count: u64, b0: u64, b1: u64, span: u64) {
    let src = cluster.read_mem(0, b0, span);
    let dst = cluster.read_mem(1, b1, span);
    for (off, len) in ty.flat().repeat(count) {
        let o = off as usize;
        assert_eq!(
            &dst[o..o + len as usize],
            &src[o..o + len as usize],
            "benchmark data corruption at offset {off}"
        );
    }
}

/// Ping-pong latency (§3.2 / §8.2): rank 0 sends `count` instances of
/// `ty` to rank 1, which echoes them back. `warmup` unmeasured round
/// trips precede `iters` measured ones.
pub fn pingpong(
    spec: &ClusterSpec,
    ty: &Datatype,
    count: u64,
    warmup: u32,
    iters: u32,
) -> PingPongResult {
    assert!(iters > 0);
    let mut cluster = Cluster::new(spec.clone());
    let (b0, b1, span) = alloc_buffers(&mut cluster, ty, count);
    let mut p0: Program = Vec::new();
    let mut p1: Program = Vec::new();
    for i in 0..warmup + iters {
        if i == warmup {
            p0.push(AppOp::MarkTime { slot: 0 });
        }
        p0.push(AppOp::Isend {
            peer: 1,
            buf: b0,
            count,
            ty: ty.clone(),
            tag: 1,
        });
        p0.push(AppOp::WaitAll);
        p0.push(AppOp::Irecv {
            peer: 1,
            buf: b0,
            count,
            ty: ty.clone(),
            tag: 2,
        });
        p0.push(AppOp::WaitAll);
        p1.push(AppOp::Irecv {
            peer: 0,
            buf: b1,
            count,
            ty: ty.clone(),
            tag: 1,
        });
        p1.push(AppOp::WaitAll);
        p1.push(AppOp::Isend {
            peer: 0,
            buf: b1,
            count,
            ty: ty.clone(),
            tag: 2,
        });
        p1.push(AppOp::WaitAll);
    }
    p0.push(AppOp::MarkTime { slot: 1 });
    let stats = cluster.run(vec![p0, p1]);
    verify(&cluster, ty, count, b0, b1, span);
    cluster.recycle();
    let round = stats.mark_interval(0, 0, 1);
    PingPongResult {
        one_way_ns: round / (2 * iters as u64),
        stats,
    }
}

/// Windowed bandwidth (§8.2): "the sender pushes 100 consecutive
/// datatype messages and then waits for a reply from the receiver when
/// all messages have been received." Sends are blocking (`MPI_Send`),
/// matching the original benchmark.
pub fn bandwidth(spec: &ClusterSpec, ty: &Datatype, count: u64, window: u32) -> BandwidthResult {
    bandwidth_impl(spec, ty, count, window, false)
}

/// [`bandwidth`] with *device-resident* user buffers on both ends:
/// every pack/unpack crosses the host↔device bus, so the measurement
/// exposes the staged bounce pipeline (chunking, double-buffering) and
/// its knobs `staging_chunk` / `staging_bufs` on the cluster spec.
pub fn bandwidth_device(
    spec: &ClusterSpec,
    ty: &Datatype,
    count: u64,
    window: u32,
) -> BandwidthResult {
    bandwidth_impl(spec, ty, count, window, true)
}

fn bandwidth_impl(
    spec: &ClusterSpec,
    ty: &Datatype,
    count: u64,
    window: u32,
    device: bool,
) -> BandwidthResult {
    assert!(window > 0);
    let mut spec = spec.clone();
    if device {
        // `alloc_device` would flip this anyway; setting it up front
        // keeps the spec equal to a recycled device cluster's, so
        // repeated device runs pool-hit like host runs do.
        spec.host.device.enabled = true;
    }
    let mut cluster = Cluster::new(spec);
    let (b0, b1, span) = if device {
        alloc_device_buffers(&mut cluster, ty, count)
    } else {
        alloc_buffers(&mut cluster, ty, count)
    };
    let reply = Datatype::int();
    let rbuf0 = cluster.alloc(0, 8, 8);
    let rbuf1 = cluster.alloc(1, 8, 8);

    let mut p0: Program = Vec::new();
    let mut p1: Program = Vec::new();
    // One warmup message to populate caches and pools.
    p0.push(AppOp::Isend {
        peer: 1,
        buf: b0,
        count,
        ty: ty.clone(),
        tag: 1,
    });
    p0.push(AppOp::WaitAll);
    p1.push(AppOp::Irecv {
        peer: 0,
        buf: b1,
        count,
        ty: ty.clone(),
        tag: 1,
    });
    p1.push(AppOp::WaitAll);

    p0.push(AppOp::MarkTime { slot: 0 });
    for _ in 0..window {
        p0.push(AppOp::Isend {
            peer: 1,
            buf: b0,
            count,
            ty: ty.clone(),
            tag: 1,
        });
        p0.push(AppOp::WaitAll);
        p1.push(AppOp::Irecv {
            peer: 0,
            buf: b1,
            count,
            ty: ty.clone(),
            tag: 1,
        });
        p1.push(AppOp::WaitAll);
    }
    p1.push(AppOp::Isend {
        peer: 0,
        buf: rbuf1,
        count: 1,
        ty: reply.clone(),
        tag: 9,
    });
    p1.push(AppOp::WaitAll);
    p0.push(AppOp::Irecv {
        peer: 1,
        buf: rbuf0,
        count: 1,
        ty: reply.clone(),
        tag: 9,
    });
    p0.push(AppOp::WaitAll);
    p0.push(AppOp::MarkTime { slot: 1 });

    let stats = cluster.run(vec![p0, p1]);
    verify(&cluster, ty, count, b0, b1, span);
    cluster.recycle();
    let interval = stats.mark_interval(0, 0, 1);
    let bytes = window as u64 * count * ty.size();
    BandwidthResult {
        bytes_per_sec: bytes as f64 / (interval as f64 / 1e9),
        interval_ns: interval,
        stats,
    }
}

/// `MPI_Alltoall` timing (§8.3): `iters` alltoalls of `count` instances
/// of `ty` per rank pair, barrier-separated; returns the mean time per
/// operation and the run statistics.
pub fn alltoall_time(
    spec: &ClusterSpec,
    ty: &Datatype,
    count: u64,
    iters: u32,
) -> (Time, RunStats) {
    assert!(iters > 0);
    let n = spec.nprocs;
    let mut cluster = Cluster::new(spec.clone());
    let block = ty.extent() as u64 * count;
    let span = block * n as u64 + ty.true_ub().max(0) as u64 + 64;
    let mut sbufs = Vec::new();
    let mut rbufs = Vec::new();
    for r in 0..n {
        let sb = cluster.alloc(r, span, 4096);
        let rb = cluster.alloc(r, span, 4096);
        cluster.fill_pattern(r, sb, span, 17 + r as u64);
        sbufs.push(sb);
        rbufs.push(rb);
    }
    let progs: Vec<Program> = (0..n)
        .map(|r| {
            let mut p: Program = vec![
                // Warmup round.
                AppOp::Alltoall {
                    sbuf: sbufs[r as usize],
                    rbuf: rbufs[r as usize],
                    count,
                    sty: ty.clone(),
                    rty: ty.clone(),
                },
                AppOp::Barrier,
            ];
            if r == 0 {
                p.push(AppOp::MarkTime { slot: 0 });
            }
            for _ in 0..iters {
                p.push(AppOp::Alltoall {
                    sbuf: sbufs[r as usize],
                    rbuf: rbufs[r as usize],
                    count,
                    sty: ty.clone(),
                    rty: ty.clone(),
                });
            }
            p.push(AppOp::Barrier);
            if r == 0 {
                p.push(AppOp::MarkTime { slot: 1 });
            }
            p
        })
        .collect();
    let stats = cluster.run(progs);
    // Verify the final round's data placement.
    for i in 0..n {
        for j in 0..n {
            let src = cluster.read_mem(i, sbufs[i as usize] + j as u64 * block, block);
            let dst = cluster.read_mem(j, rbufs[j as usize] + i as u64 * block, block);
            for (off, len) in ty.flat().repeat(count) {
                let o = off as usize;
                assert_eq!(&dst[o..o + len as usize], &src[o..o + len as usize]);
            }
        }
    }
    cluster.recycle();
    let per_op = stats.mark_interval(0, 0, 1) / iters as u64;
    (per_op, stats)
}

/// Asymmetric ping-pong: rank 0 sends `scount` instances of `sty`;
/// rank 1 receives (and echoes) `rcount` instances of `rty`. The type
/// signatures must carry the same number of bytes. Exercises the §5.2
/// asymmetric case (e.g. contiguous sender, noncontiguous receiver).
#[allow(clippy::too_many_arguments)]
pub fn pingpong_asym(
    spec: &ClusterSpec,
    sty: &Datatype,
    scount: u64,
    rty: &Datatype,
    rcount: u64,
    warmup: u32,
    iters: u32,
) -> PingPongResult {
    assert!(iters > 0);
    assert_eq!(
        scount * sty.size(),
        rcount * rty.size(),
        "signature mismatch"
    );
    let mut cluster = Cluster::new(spec.clone());
    let s_span =
        ((scount.saturating_sub(1)) as i64 * sty.extent() + sty.true_ub()).max(8) as u64 + 64;
    let r_span =
        ((rcount.saturating_sub(1)) as i64 * rty.extent() + rty.true_ub()).max(8) as u64 + 64;
    let b0 = cluster.alloc(0, s_span, 4096);
    let b1 = cluster.alloc(1, r_span, 4096);
    cluster.fill_pattern(0, b0, s_span, 21);
    let mut p0: Program = Vec::new();
    let mut p1: Program = Vec::new();
    for i in 0..warmup + iters {
        if i == warmup {
            p0.push(AppOp::MarkTime { slot: 0 });
        }
        p0.push(AppOp::Isend {
            peer: 1,
            buf: b0,
            count: scount,
            ty: sty.clone(),
            tag: 1,
        });
        p0.push(AppOp::WaitAll);
        p0.push(AppOp::Irecv {
            peer: 1,
            buf: b0,
            count: scount,
            ty: sty.clone(),
            tag: 2,
        });
        p0.push(AppOp::WaitAll);
        p1.push(AppOp::Irecv {
            peer: 0,
            buf: b1,
            count: rcount,
            ty: rty.clone(),
            tag: 1,
        });
        p1.push(AppOp::WaitAll);
        p1.push(AppOp::Isend {
            peer: 0,
            buf: b1,
            count: rcount,
            ty: rty.clone(),
            tag: 2,
        });
        p1.push(AppOp::WaitAll);
    }
    p0.push(AppOp::MarkTime { slot: 1 });
    let stats = cluster.run(vec![p0, p1]);
    // Stream equivalence check.
    let src = cluster.read_mem(0, b0, s_span);
    let dst = cluster.read_mem(1, b1, r_span);
    let gather = |ty: &Datatype, count: u64, mem: &[u8]| -> Vec<u8> {
        let mut out = Vec::new();
        for (off, len) in ty.flat().repeat(count) {
            out.extend_from_slice(&mem[off as usize..(off + len as i64) as usize]);
        }
        out
    };
    assert_eq!(
        gather(sty, scount, &src),
        gather(rty, rcount, &dst),
        "asymmetric transfer stream mismatch"
    );
    cluster.recycle();
    let round = stats.mark_interval(0, 0, 1);
    PingPongResult {
        one_way_ns: round / (2 * iters as u64),
        stats,
    }
}

/// Fig. 2 `Manual`: the user packs into a contiguous buffer themselves
/// (cost modelled by [`VectorWorkload::manual_copy_ns`]), sends
/// contiguously, and the receiver unpacks manually.
pub fn pingpong_manual(
    spec: &ClusterSpec,
    w: &VectorWorkload,
    warmup: u32,
    iters: u32,
) -> PingPongResult {
    pingpong_manual_ty(spec, &w.ty, warmup, iters)
}

/// [`pingpong_manual`] for an arbitrary datatype: the manual copy cost
/// is derived from the type's own block structure with the same model
/// as [`VectorWorkload::manual_copy_ns`] (per-block overhead plus the
/// bytes at the host copy bandwidth), so any x17 taxonomy class gets a
/// fair pack+send baseline.
pub fn pingpong_manual_ty(
    spec: &ClusterSpec,
    ty: &Datatype,
    warmup: u32,
    iters: u32,
) -> PingPongResult {
    let size = ty.size();
    let copy_ns = spec.host.copy_block_overhead_ns * ty.num_blocks() as u64
        + transfer_ns(size, spec.host.copy_bw_bps);
    let contig = Datatype::contiguous(size, &Datatype::byte()).expect("contig");
    let mut cluster = Cluster::new(spec.clone());
    let b0 = cluster.alloc(0, size + 64, 4096);
    let b1 = cluster.alloc(1, size + 64, 4096);
    cluster.fill_pattern(0, b0, size, 5);
    let mut p0: Program = Vec::new();
    let mut p1: Program = Vec::new();
    for i in 0..warmup + iters {
        if i == warmup {
            p0.push(AppOp::MarkTime { slot: 0 });
        }
        // Sender: manual pack, contiguous send; on the reply, manual
        // unpack.
        p0.push(AppOp::Compute { ns: copy_ns });
        p0.push(AppOp::Isend {
            peer: 1,
            buf: b0,
            count: 1,
            ty: contig.clone(),
            tag: 1,
        });
        p0.push(AppOp::WaitAll);
        p0.push(AppOp::Irecv {
            peer: 1,
            buf: b0,
            count: 1,
            ty: contig.clone(),
            tag: 2,
        });
        p0.push(AppOp::WaitAll);
        p0.push(AppOp::Compute { ns: copy_ns });
        p1.push(AppOp::Irecv {
            peer: 0,
            buf: b1,
            count: 1,
            ty: contig.clone(),
            tag: 1,
        });
        p1.push(AppOp::WaitAll);
        p1.push(AppOp::Compute { ns: 2 * copy_ns }); // unpack + repack
        p1.push(AppOp::Isend {
            peer: 0,
            buf: b1,
            count: 1,
            ty: contig.clone(),
            tag: 2,
        });
        p1.push(AppOp::WaitAll);
    }
    p0.push(AppOp::MarkTime { slot: 1 });
    let stats = cluster.run(vec![p0, p1]);
    cluster.recycle();
    let round = stats.mark_interval(0, 0, 1);
    PingPongResult {
        one_way_ns: round / (2 * iters as u64),
        stats,
    }
}

/// Fig. 2 `Multiple`: each contiguous block travels as its own MPI
/// message ("transfers each contiguous block one by one using
/// individual MPI calls").
pub fn pingpong_multiple(
    spec: &ClusterSpec,
    w: &VectorWorkload,
    warmup: u32,
    iters: u32,
) -> PingPongResult {
    let block_ty = Datatype::contiguous(w.block_bytes, &Datatype::byte()).expect("contig");
    let row_stride = 4096u64 * 4;
    let mut cluster = Cluster::new(spec.clone());
    let b0 = cluster.alloc(0, w.span, 4096);
    let b1 = cluster.alloc(1, w.span, 4096);
    cluster.fill_pattern(0, b0, w.span, 5);
    let mut p0: Program = Vec::new();
    let mut p1: Program = Vec::new();
    for i in 0..warmup + iters {
        if i == warmup {
            p0.push(AppOp::MarkTime { slot: 0 });
        }
        for r in 0..w.blocks {
            p0.push(AppOp::Isend {
                peer: 1,
                buf: b0 + r * row_stride,
                count: 1,
                ty: block_ty.clone(),
                tag: 1,
            });
            p1.push(AppOp::Irecv {
                peer: 0,
                buf: b1 + r * row_stride,
                count: 1,
                ty: block_ty.clone(),
                tag: 1,
            });
        }
        p0.push(AppOp::WaitAll);
        p1.push(AppOp::WaitAll);
        // Echo direction.
        for r in 0..w.blocks {
            p1.push(AppOp::Isend {
                peer: 0,
                buf: b1 + r * row_stride,
                count: 1,
                ty: block_ty.clone(),
                tag: 2,
            });
            p0.push(AppOp::Irecv {
                peer: 1,
                buf: b0 + r * row_stride,
                count: 1,
                ty: block_ty.clone(),
                tag: 2,
            });
        }
        p1.push(AppOp::WaitAll);
        p0.push(AppOp::WaitAll);
    }
    p0.push(AppOp::MarkTime { slot: 1 });
    let stats = cluster.run(vec![p0, p1]);
    // Verify the columns landed.
    let src = cluster.read_mem(0, b0, w.span);
    let dst = cluster.read_mem(1, b1, w.span);
    for r in 0..w.blocks {
        let o = (r * row_stride) as usize;
        let l = w.block_bytes as usize;
        assert_eq!(&dst[o..o + l], &src[o..o + l]);
    }
    cluster.recycle();
    let round = stats.mark_interval(0, 0, 1);
    PingPongResult {
        one_way_ns: round / (2 * iters as u64),
        stats,
    }
}

/// Fig. 2 `Contig`: a contiguous transfer of the same number of bytes —
/// the reference every scheme is compared against.
pub fn pingpong_contig(spec: &ClusterSpec, bytes: u64, warmup: u32, iters: u32) -> PingPongResult {
    let ty = Datatype::contiguous(bytes, &Datatype::byte()).expect("contig");
    pingpong(spec, &ty, 1, warmup, iters)
}

/// Result of an incast / oversubscription overload run.
#[derive(Debug)]
pub struct IncastResult {
    /// Virtual time from the receiver's first instruction until every
    /// message was matched (N→1 incast), or total run time (all-to-all
    /// oversubscription).
    pub completion_ns: Time,
    /// High-water payload-bearing unexpected-queue occupancy across all
    /// ranks.
    pub peak_unexpected: u64,
    /// Full run statistics.
    pub stats: RunStats,
}

/// Cluster spec sized for many-rank overload runs: the per-peer eager
/// rings shrink (8 slots of 2 KiB instead of 128 of 16 KiB) so a
/// 65-rank incast fits in simulated memory, and `credits` eager credits
/// per peer are applied with flow control on. `credits == 0` leaves
/// flow control off — the classic unthrottled behaviour.
pub fn incast_spec(nprocs: u32, credits: u32) -> ClusterSpec {
    let mut s = ClusterSpec {
        nprocs,
        ..ClusterSpec::default()
    };
    s.mpi.eager_buf_size = 2048;
    s.mpi.eager_bufs_per_peer = 8;
    s.mpi.eager_send_bufs = 64;
    if credits > 0 {
        s.mpi.flow_control = true;
        s.mpi.eager_credits = credits;
        s.mpi.pending_cap = 64;
        // Generous soft cap: grants already in flight when the blocking
        // watermark is crossed can still land, so leave headroom above
        // the theoretical fan_in * credits worst case.
        s.mpi.unexpected_cap = 2 * nprocs as usize * credits as usize;
    }
    s
}

/// N→1 eager incast: every rank but 0 fires `msgs` eager messages of
/// `msg_bytes` at rank 0 simultaneously, while the receiver is a slow
/// consumer — it burns `recv_work_ns` of compute before each round of
/// receives, so arrivals outpace matching and the unexpected queue
/// takes the burst. Each (sender, message) payload carries its own
/// pattern and lands in its own receive slot, so a lost, duplicated,
/// or misrouted message fails the run.
pub fn incast(spec: &ClusterSpec, msgs: u32, msg_bytes: u64, recv_work_ns: Time) -> IncastResult {
    let n = spec.nprocs;
    assert!(n >= 2, "incast needs at least one sender");
    assert!(msgs > 0 && msg_bytes > 0);
    let mut cluster = Cluster::new(spec.clone());
    let ty = Datatype::contiguous(msg_bytes, &Datatype::byte()).expect("contig");
    let stride = msg_bytes.max(8);
    // Per-sender source region: one distinctly-patterned slot per
    // message.
    let mut sbufs = Vec::new();
    for r in 1..n {
        let sb = cluster.alloc(r, stride * msgs as u64, 4096);
        for m in 0..msgs {
            cluster.fill_pattern(
                r,
                sb + m as u64 * stride,
                msg_bytes,
                0xA11 + r as u64 * 1_000 + m as u64,
            );
        }
        sbufs.push(sb);
    }
    let fan_in = (n - 1) as u64;
    let rbuf = cluster.alloc(0, stride * fan_in * msgs as u64, 4096);
    let rslot = |r: u32, m: u32| rbuf + (m as u64 * fan_in + (r - 1) as u64) * stride;

    let mut p0: Program = vec![AppOp::MarkTime { slot: 0 }];
    for m in 0..msgs {
        if recv_work_ns > 0 {
            p0.push(AppOp::Compute { ns: recv_work_ns });
        }
        for r in 1..n {
            p0.push(AppOp::Irecv {
                peer: r,
                buf: rslot(r, m),
                count: 1,
                ty: ty.clone(),
                tag: m,
            });
        }
    }
    p0.push(AppOp::WaitAll);
    p0.push(AppOp::MarkTime { slot: 1 });
    let mut progs = vec![p0];
    for r in 1..n {
        let mut p: Program = Vec::new();
        for m in 0..msgs {
            p.push(AppOp::Isend {
                peer: 0,
                buf: sbufs[(r - 1) as usize] + m as u64 * stride,
                count: 1,
                ty: ty.clone(),
                tag: m,
            });
        }
        p.push(AppOp::WaitAll);
        progs.push(p);
    }
    let stats = cluster.run(progs);
    for r in 1..n {
        for m in 0..msgs {
            let src = cluster.read_mem(r, sbufs[(r - 1) as usize] + m as u64 * stride, msg_bytes);
            let dst = cluster.read_mem(0, rslot(r, m), msg_bytes);
            assert_eq!(dst, src, "incast payload corrupt: sender {r} msg {m}");
        }
    }
    cluster.recycle();
    let peak_unexpected = stats
        .counters
        .iter()
        .map(|c| c.peak_unexpected)
        .max()
        .unwrap_or(0);
    IncastResult {
        completion_ns: stats.mark_interval(0, 0, 1),
        peak_unexpected,
        stats,
    }
}

/// All-to-all eager oversubscription: every rank blasts `msgs` eager
/// messages of `msg_bytes` at every other rank *before* posting any of
/// its own receives, so each rank is simultaneously an incast victim
/// and an incast source. Payloads are per-(sender, message) patterned
/// and verified at every receiver.
pub fn alltoall_oversub(spec: &ClusterSpec, msgs: u32, msg_bytes: u64) -> IncastResult {
    let n = spec.nprocs;
    assert!(n >= 2 && msgs > 0 && msg_bytes > 0);
    let mut cluster = Cluster::new(spec.clone());
    let ty = Datatype::contiguous(msg_bytes, &Datatype::byte()).expect("contig");
    let stride = msg_bytes.max(8);
    let peers = (n - 1) as u64;
    let mut sbufs = Vec::new();
    let mut rbufs = Vec::new();
    for r in 0..n {
        let sb = cluster.alloc(r, stride * msgs as u64, 4096);
        for m in 0..msgs {
            cluster.fill_pattern(
                r,
                sb + m as u64 * stride,
                msg_bytes,
                0xB22 + r as u64 * 1_000 + m as u64,
            );
        }
        sbufs.push(sb);
        rbufs.push(cluster.alloc(r, stride * peers * msgs as u64, 4096));
    }
    // Receive-slot index for (receiver r, sender s, message m): senders
    // are packed densely, skipping r itself.
    let sidx = |r: u32, s: u32| if s < r { s as u64 } else { (s - 1) as u64 };
    let progs: Vec<Program> = (0..n)
        .map(|r| {
            let mut p: Program = Vec::new();
            for m in 0..msgs {
                for s in 0..n {
                    if s == r {
                        continue;
                    }
                    p.push(AppOp::Isend {
                        peer: s,
                        buf: sbufs[r as usize] + m as u64 * stride,
                        count: 1,
                        ty: ty.clone(),
                        tag: m,
                    });
                }
            }
            for m in 0..msgs {
                for s in 0..n {
                    if s == r {
                        continue;
                    }
                    p.push(AppOp::Irecv {
                        peer: s,
                        buf: rbufs[r as usize] + (m as u64 * peers + sidx(r, s)) * stride,
                        count: 1,
                        ty: ty.clone(),
                        tag: m,
                    });
                }
            }
            p.push(AppOp::WaitAll);
            p
        })
        .collect();
    let stats = cluster.run(progs);
    for r in 0..n {
        for s in 0..n {
            if s == r {
                continue;
            }
            for m in 0..msgs {
                let src = cluster.read_mem(s, sbufs[s as usize] + m as u64 * stride, msg_bytes);
                let dst = cluster.read_mem(
                    r,
                    rbufs[r as usize] + (m as u64 * peers + sidx(r, s)) * stride,
                    msg_bytes,
                );
                assert_eq!(dst, src, "oversub payload corrupt: {s}->{r} msg {m}");
            }
        }
    }
    cluster.recycle();
    let peak_unexpected = stats
        .counters
        .iter()
        .map(|c| c.peak_unexpected)
        .max()
        .unwrap_or(0);
    IncastResult {
        completion_ns: stats.finish_ns,
        peak_unexpected,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::VectorWorkload;
    use ibdt_mpicore::Scheme;

    fn spec(scheme: Scheme) -> ClusterSpec {
        let mut s = ClusterSpec::default();
        s.mpi.scheme = scheme;
        s
    }

    #[test]
    fn pingpong_reports_positive_latency() {
        let w = VectorWorkload::new(16);
        let r = pingpong(&spec(Scheme::BcSpup), &w.ty, 1, 1, 3);
        assert!(r.one_way_ns > 1_000);
        assert_eq!(r.stats.rnr_events, 0);
    }

    #[test]
    fn pingpong_warmup_lowers_latency() {
        // First iteration pays registration; steady state must be
        // faster than a cold single-shot.
        let w = VectorWorkload::new(256);
        let cold = pingpong(&spec(Scheme::MultiW), &w.ty, 1, 0, 1).one_way_ns;
        let warm = pingpong(&spec(Scheme::MultiW), &w.ty, 1, 2, 4).one_way_ns;
        assert!(warm < cold, "warm {warm} !< cold {cold}");
    }

    #[test]
    fn bandwidth_below_link_rate() {
        let w = VectorWorkload::new(64);
        let r = bandwidth(&spec(Scheme::BcSpup), &w.ty, 1, 10);
        assert!(r.bytes_per_sec > 1e7, "bw {} too low", r.bytes_per_sec);
        assert!(
            r.bytes_per_sec < 880e6,
            "bw {} exceeds the wire",
            r.bytes_per_sec
        );
    }

    #[test]
    fn alltoall_runs_and_verifies() {
        let ty = crate::structdt::struct_datatype(512);
        let mut s = spec(Scheme::BcSpup);
        s.nprocs = 4;
        let (per_op, stats) = alltoall_time(&s, &ty, 1, 2);
        assert!(per_op > 1_000);
        assert_eq!(stats.rnr_events, 0);
    }

    #[test]
    fn manual_beats_generic_datatype_slightly() {
        let w = VectorWorkload::new(64);
        let dt = pingpong(&spec(Scheme::Generic), &w.ty, 1, 1, 3).one_way_ns;
        let manual = pingpong_manual(&spec(Scheme::Generic), &w, 1, 3).one_way_ns;
        assert!(manual < dt, "manual {manual} !< datatype {dt}");
        // ... but not by much (same two copies travel the same wire).
        assert!(manual * 2 > dt, "manual {manual} implausibly fast vs {dt}");
    }

    #[test]
    fn multiple_scheme_wins_at_large_blocks_only() {
        let small = VectorWorkload::new(8); // 32 B blocks
        let large = VectorWorkload::new(2048); // 8 KiB blocks
        let s = spec(Scheme::Generic);
        let dt_small = pingpong(&s, &small.ty, 1, 1, 2).one_way_ns;
        let mult_small = pingpong_multiple(&s, &small, 1, 2).one_way_ns;
        assert!(
            mult_small > dt_small,
            "multiple {mult_small} should lose at 32-byte blocks vs {dt_small}"
        );
        let dt_large = pingpong(&s, &large.ty, 1, 1, 2).one_way_ns;
        let mult_large = pingpong_multiple(&s, &large, 1, 2).one_way_ns;
        assert!(
            mult_large < dt_large,
            "multiple {mult_large} should win at 8 KiB blocks vs {dt_large}"
        );
    }

    #[test]
    fn incast_small_fanin_verifies_with_credits() {
        let mut s = incast_spec(5, 8);
        s.mpi.audit = true;
        let r = incast(&s, 6, 512, 2_000);
        assert_eq!(r.stats.total_errors(), 0);
        assert!(r.completion_ns > 0);
        assert!(
            r.peak_unexpected <= s.mpi.unexpected_cap as u64,
            "peak {} above cap {}",
            r.peak_unexpected,
            s.mpi.unexpected_cap
        );
    }

    #[test]
    fn incast_without_flow_control_still_verifies() {
        let s = incast_spec(5, 0);
        let r = incast(&s, 6, 512, 2_000);
        assert_eq!(r.stats.total_errors(), 0);
        // No credits: nothing should have spilled for credit reasons.
        let spills: u64 = r.stats.counters.iter().map(|c| c.credit_spills).sum();
        assert_eq!(spills, 0);
    }

    #[test]
    fn alltoall_oversub_verifies_with_credits() {
        let mut s = incast_spec(4, 8);
        s.mpi.audit = true;
        let r = alltoall_oversub(&s, 4, 512);
        assert_eq!(r.stats.total_errors(), 0);
        assert!(r.completion_ns > 0);
    }

    #[test]
    fn contig_is_fastest() {
        let w = VectorWorkload::new(256);
        let s = spec(Scheme::Generic);
        let contig = pingpong_contig(&s, w.size, 1, 2).one_way_ns;
        let dt = pingpong(&s, &w.ty, 1, 1, 2).one_way_ns;
        assert!(contig < dt);
        // Fig. 2: datatype gets no more than ~1/4 of contiguous
        // performance at sizeable messages.
        assert!(
            dt > contig * 2,
            "generic datatype {dt} should be far slower than contig {contig}"
        );
    }
}
