//! The Fig. 10 struct datatype for the `MPI_Alltoall` test (§8.3).
//!
//! "The block size varies from one integer to x integers. The gap
//! between two blocks equals the size of the first block" — block sizes
//! increase exponentially from 4 bytes to the largest block.

use ibdt_datatype::Datatype;

/// Builds the Fig. 10 struct: blocks of 1, 2, 4, … ints up to
/// `last_block_ints`, each followed by a gap equal to the block itself.
pub fn struct_datatype(last_block_ints: u64) -> Datatype {
    assert!(
        last_block_ints.is_power_of_two(),
        "paper uses powers of two"
    );
    let mut fields = Vec::new();
    let mut displ = 0i64;
    let mut ints = 1u64;
    loop {
        fields.push((ints, displ, Datatype::int()));
        // Gap equal to the block just placed.
        displ += 2 * (ints as i64) * 4;
        if ints == last_block_ints {
            break;
        }
        ints *= 2;
    }
    Datatype::struct_(&fields).expect("fig. 10 struct is always valid")
}

/// Total data bytes of the Fig. 10 struct.
pub fn struct_size(last_block_ints: u64) -> u64 {
    struct_datatype(last_block_ints).size()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_sizes_double() {
        let t = struct_datatype(8);
        // Blocks: 1, 2, 4, 8 ints = 15 ints = 60 bytes.
        assert_eq!(t.size(), 60);
        assert_eq!(t.num_blocks(), 4);
        let blocks = &t.flat().blocks;
        assert_eq!(blocks[0], (0, 4));
        assert_eq!(blocks[1], (8, 8));
        assert_eq!(blocks[2], (24, 16));
        assert_eq!(blocks[3], (56, 32));
    }

    #[test]
    fn paper_example_8192() {
        // "when the number of integers in the last block is 8192, the
        // block sizes vary from 4 bytes to 32768 bytes."
        let t = struct_datatype(8192);
        let blocks = &t.flat().blocks;
        assert_eq!(blocks.first().unwrap().1, 4);
        assert_eq!(blocks.last().unwrap().1, 32768);
        assert_eq!(blocks.len(), 14);
        // Total = (2^14 - 1) ints.
        assert_eq!(t.size(), ((1 << 14) - 1) * 4);
    }

    #[test]
    fn trivial_single_block() {
        let t = struct_datatype(1);
        assert_eq!(t.size(), 4);
        assert_eq!(t.num_blocks(), 1);
    }
}
