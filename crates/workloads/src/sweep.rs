//! Parallel parameter sweeps.
//!
//! Each simulation is deterministic and single-threaded, so a sweep
//! over workload parameters is embarrassingly parallel: inputs fan out
//! across OS threads, results come back in input order. This is the
//! only place the crate uses real parallelism — inside a simulation
//! determinism rules it out.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `f` over every input, in parallel, returning results in input
/// order. `f` must be deterministic per input (it is in this codebase:
/// simulations take no ambient state).
pub fn run_sweep<I, R, F>(inputs: Vec<I>, f: F) -> Vec<R>
where
    I: Sync,
    R: Send,
    F: Fn(&I) -> R + Sync,
{
    let n = inputs.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4)
        .min(n);
    if threads <= 1 {
        return inputs.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<R>>> = Mutex::new((0..n).map(|_| None).collect());
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&inputs[i]);
                results.lock().expect("sweep worker panicked")[i] = Some(r);
            });
        }
    });
    results
        .into_inner()
        .expect("all workers joined")
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_input_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = run_sweep(inputs, |&x| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = run_sweep(Vec::<u32>::new(), |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn single_input() {
        assert_eq!(run_sweep(vec![7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn parallel_matches_serial() {
        // A mildly expensive deterministic function.
        let f = |&x: &u64| -> u64 {
            let mut acc = x;
            for _ in 0..1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        };
        let inputs: Vec<u64> = (0..64).collect();
        let serial: Vec<u64> = inputs.iter().map(f).collect();
        assert_eq!(run_sweep(inputs, f), serial);
    }
}
