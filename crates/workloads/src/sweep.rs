//! Parallel parameter sweeps.
//!
//! Each simulation is deterministic and single-threaded, so a sweep
//! over workload parameters is embarrassingly parallel: inputs fan out
//! across OS threads, results come back in input order. The thread
//! machinery lives in [`ibdt_simcore::shard::run_indexed`] (shared
//! with the sharded large-run driver); this wrapper only picks the
//! thread count and adapts the input-slice signature.

/// Runs `f` over every input, in parallel, returning results in input
/// order. `f` must be deterministic per input (it is in this codebase:
/// simulations take no ambient state).
///
/// Workers claim items through an atomic cursor and write each result
/// through that item's own slot, so there is no lock shared across
/// items to contend on — or to poison. If a worker panics, the
/// original panic propagates to the caller unchanged rather than
/// surfacing as a poisoned-lock error from an unrelated worker.
pub fn run_sweep<I, R, F>(inputs: Vec<I>, f: F) -> Vec<R>
where
    I: Sync,
    R: Send,
    F: Fn(&I) -> R + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(4);
    ibdt_simcore::shard::run_indexed(inputs.len(), threads, |i| f(&inputs[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_in_input_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = run_sweep(inputs, |&x| x * x);
        assert_eq!(out, (0..100).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input() {
        let out: Vec<u32> = run_sweep(Vec::<u32>::new(), |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn single_input() {
        assert_eq!(run_sweep(vec![7u32], |&x| x + 1), vec![8]);
    }

    #[test]
    fn parallel_matches_serial() {
        // A mildly expensive deterministic function.
        let f = |&x: &u64| -> u64 {
            let mut acc = x;
            for _ in 0..1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            acc
        };
        let inputs: Vec<u64> = (0..64).collect();
        let serial: Vec<u64> = inputs.iter().map(f).collect();
        assert_eq!(run_sweep(inputs, f), serial);
    }

    #[test]
    fn worker_panic_surfaces_original_message() {
        let inputs: Vec<u32> = (0..32).collect();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_sweep(inputs, |&x| {
                if x == 13 {
                    panic!("boom at 13");
                }
                x
            })
        }))
        .expect_err("sweep must propagate the worker panic");
        let msg = err
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| err.downcast_ref::<String>().cloned())
            .expect("payload is a string");
        assert!(msg.contains("boom at 13"), "got: {msg}");
        assert!(!msg.contains("poisoned"), "got: {msg}");
    }
}
