//! The §3.2 vector workload: columns of a two-dimensional
//! 128 × 4096 integer array.

use ibdt_datatype::Datatype;
use ibdt_ibsim::HostConfig;
use ibdt_simcore::time::{transfer_ns, Time};

/// Number of rows in the paper's array.
pub const ROWS: u64 = 128;
/// Number of integer columns in the paper's array.
pub const COLS: u64 = 4096;

/// `MPI_Type_vector(128, x, 4096, MPI_INT)` — `x` columns of the array.
pub fn vector_datatype(x: u64) -> Datatype {
    Datatype::vector(ROWS, x, COLS as i64, &Datatype::int())
        .expect("the paper's vector type is always valid")
}

/// Everything the Fig. 2 / 8 / 9 benchmarks need to know about one
/// column count.
#[derive(Debug, Clone)]
pub struct VectorWorkload {
    /// Number of columns transferred.
    pub columns: u64,
    /// The derived datatype.
    pub ty: Datatype,
    /// Total data bytes.
    pub size: u64,
    /// Bytes per contiguous block.
    pub block_bytes: u64,
    /// Number of contiguous blocks (= rows).
    pub blocks: u64,
    /// Memory span a user buffer must cover.
    pub span: u64,
}

impl VectorWorkload {
    /// Builds the workload for `x` columns.
    pub fn new(x: u64) -> Self {
        let ty = vector_datatype(x);
        VectorWorkload {
            columns: x,
            size: ty.size(),
            block_bytes: x * 4,
            blocks: ROWS,
            span: ty.true_ub() as u64 + 64,
            ty,
        }
    }

    /// Host time for a *manual* pack or unpack of this layout: the user
    /// writes the copy loop themselves, so the datatype-processing
    /// per-block overhead of the library does not apply (§3.2: "Manual
    /// performs a little better than Datatype ... because of datatype
    /// processing overhead").
    pub fn manual_copy_ns(&self, host: &HostConfig) -> Time {
        host.copy_block_overhead_ns * self.blocks + transfer_ns(self.size, host.copy_bw_bps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datatype_matches_paper_example() {
        let w = VectorWorkload::new(4);
        assert_eq!(w.size, 128 * 4 * 4);
        assert_eq!(w.block_bytes, 16);
        assert_eq!(w.blocks, 128);
        assert_eq!(w.ty.num_blocks(), 128);
    }

    #[test]
    fn full_width_is_contiguous() {
        // x == 4096 covers the whole array: one dense block.
        let w = VectorWorkload::new(COLS);
        assert_eq!(w.ty.num_blocks(), 1);
        assert!(w.ty.is_contiguous());
    }

    #[test]
    fn manual_cheaper_than_library_pack() {
        let w = VectorWorkload::new(16);
        let host = HostConfig::default();
        let lib = host.copy_ns(w.blocks as usize, w.size);
        assert!(w.manual_copy_ns(&host) < lib);
    }

    #[test]
    fn span_covers_all_columns() {
        let w = VectorWorkload::new(2048);
        assert!(w.span >= (127 * 4096 + 2048) * 4);
    }
}
