//! Large-rank collective driver on the sharded simulator.
//!
//! The full [`ibdt_mpicore`] cluster carries per-pair protocol state
//! and per-peer eager buffers — exactly what you want for protocol
//! fidelity at 4–64 ranks, and exactly what you cannot afford at 4096.
//! This module models the *timing* of a large collective with a
//! lightweight per-rank state machine (serial CPU, serial NIC transmit
//! engine, windowed injection) whose per-message costs come from the
//! same calibrated models the cluster uses: [`HostConfig::copy_ns`]
//! over the compiled [`TransferPlan`]'s block list for pack/unpack,
//! and [`NetConfig`]'s transmit/propagation terms for the wire.
//!
//! Ranks are partitioned across [`ShardSim`] shards and advance in
//! conservative windows of one link propagation delay (the lookahead).
//! Every cross-rank event — a message arrival, a completion ack — is
//! charged at least that delay, and every event is keyed by the
//! partition-independent `(time, kind, rank, msg-id)` tuple, so the
//! run is **bit-identical across shard and thread counts** (asserted
//! in tests and by `ci.sh --scale`). The per-rank result digest is an
//! FNV-1a fold of each completion, combined in rank order.

use ibdt_datatype::TransferPlan;
use ibdt_ibsim::{HostConfig, NetConfig};
use ibdt_simcore::shard::{ShardSim, ShardWorld};
use ibdt_simcore::time::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::vector::VectorWorkload;

/// One scheduled fault in a scaled run.
///
/// Faults are *events*, not rates: an explicit `(time, kind, rank)`
/// list is what keeps a chaotic 4096-rank run bit-identical across
/// shard and thread counts (each fault becomes an event in the same
/// partition-independent total order as the traffic), and what the
/// testkit shrinker can delta-minimize when a chaos suite fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ScaleFault {
    /// Crash-stop: `rank` halts at `at_ns`. It stops injecting,
    /// receiving, and acking; messages already on the wire toward it
    /// are lost on arrival, and its peers observe permanently stuck
    /// window slots.
    Crash {
        /// Virtual time of the crash.
        at_ns: Time,
        /// Rank that halts.
        rank: u32,
    },
    /// `rank`'s NIC transmit engine stalls for `stall_ns` starting at
    /// `at_ns` (the scale-tier analogue of [`FaultPlan::stall_rate`]
    /// doorbell/PCI-X stalls).
    ///
    /// [`FaultPlan::stall_rate`]: ibdt_ibsim::FaultPlan::stall_rate
    Stall {
        /// Virtual time the stall begins.
        at_ns: Time,
        /// Rank whose transmit engine stalls.
        rank: u32,
        /// Stall duration.
        stall_ns: Time,
    },
}

impl ScaleFault {
    /// The rank the fault targets.
    pub fn rank(&self) -> u32 {
        match *self {
            ScaleFault::Crash { rank, .. } | ScaleFault::Stall { rank, .. } => rank,
        }
    }

    /// The virtual time the fault fires.
    pub fn at_ns(&self) -> Time {
        match *self {
            ScaleFault::Crash { at_ns, .. } | ScaleFault::Stall { at_ns, .. } => at_ns,
        }
    }
}

/// Deterministic chaos plan for the sharded scale driver: a seed (kept
/// for replay diagnostics) plus the explicit fault-event list derived
/// from it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScaleFaultPlan {
    /// Seed the event list was derived from (0 for hand-built plans).
    pub seed: u64,
    /// Scheduled fault events. Order is irrelevant — events are keyed
    /// into the simulation's total order by `(time, kind, rank)`.
    pub events: Vec<ScaleFault>,
}

impl ScaleFaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when the plan schedules no faults.
    pub fn is_inert(&self) -> bool {
        self.events.is_empty()
    }

    /// Derives an explicit fault-event list from `seed`: `crashes`
    /// distinct ranks crash-stop and `stalls` transmit-engine stalls
    /// fire, all at times uniform in `[1, horizon_ns]` (stall
    /// durations uniform up to `horizon_ns / 8`). Identical arguments
    /// yield an identical list on every platform.
    pub fn seeded(seed: u64, ranks: u32, crashes: u32, stalls: u32, horizon_ns: Time) -> Self {
        assert!(ranks >= 2, "a scaled run needs at least two ranks");
        assert!(
            crashes < ranks,
            "crashing every rank leaves nothing to observe the failure"
        );
        assert!(horizon_ns > 0, "faults need a nonzero horizon");
        let mut rng = SplitMix64::new(seed);
        let mut events = Vec::with_capacity((crashes + stalls) as usize);
        let mut crashed = vec![false; ranks as usize];
        for _ in 0..crashes {
            let rank = loop {
                let r = (rng.next_u64() % ranks as u64) as u32;
                if !crashed[r as usize] {
                    crashed[r as usize] = true;
                    break r;
                }
            };
            events.push(ScaleFault::Crash {
                at_ns: 1 + rng.next_u64() % horizon_ns,
                rank,
            });
        }
        for _ in 0..stalls {
            events.push(ScaleFault::Stall {
                at_ns: 1 + rng.next_u64() % horizon_ns,
                rank: (rng.next_u64() % ranks as u64) as u32,
                stall_ns: 1 + rng.next_u64() % (horizon_ns / 8).max(1),
            });
        }
        events.sort_unstable();
        Self { seed, events }
    }
}

/// Minimal SplitMix64, private to the driver: the chaos plan is a
/// product feature of the workloads crate and must not depend on the
/// dev-only `ibdt-testkit` (same policy as `ibsim::fault`).
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        let mut r = Self {
            state: seed ^ 0x6A09_E667_F3BC_C909,
        };
        let _ = r.next_u64();
        r
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Communication pattern of the scaled run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalePattern {
    /// Every rank sends one message to every other rank, starting with
    /// its right neighbor (the classic shifted all-to-all schedule).
    Alltoall,
    /// Every rank sends one message to its right neighbor.
    Ring,
}

/// Parameters of one scaled run.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// World size.
    pub ranks: u32,
    /// Shard count (1 = sequential reference execution).
    pub shards: usize,
    /// Worker threads driving the shards.
    pub threads: usize,
    /// Vector-datatype columns per message (the §3.2 shape).
    pub columns: u64,
    /// Per-rank injection window: sends in flight before the next
    /// message waits for a completion ack.
    pub window: u32,
    /// Traffic pattern.
    pub pattern: ScalePattern,
    /// Scheduled chaos. [`ScaleFaultPlan::none`] (the default) costs
    /// nothing and changes nothing.
    pub faults: ScaleFaultPlan,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            ranks: 64,
            shards: 1,
            threads: 1,
            columns: 4,
            window: 4,
            pattern: ScalePattern::Alltoall,
            faults: ScaleFaultPlan::none(),
        }
    }
}

/// Result of one scaled run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaleReport {
    /// World size.
    pub ranks: u32,
    /// Messages delivered (must equal the pattern's expectation).
    pub msgs: u64,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Virtual time at which the last unpack finished.
    pub finish_ns: Time,
    /// Conservative windows executed.
    pub rounds: u64,
    /// Order-independent digest of every completion **and** every
    /// per-rank failure observation (messages received, sends stuck in
    /// flight, crashed-or-not): FNV-1a per rank, folded in rank order.
    /// Identical across shard/thread counts, with or without faults.
    pub fingerprint: u64,
    /// Ranks that crash-stopped during the run.
    pub crashed: u32,
    /// Messages lost on arrival at a crashed rank.
    pub lost: u64,
    /// Resident bytes of simulation state at the end of the run
    /// (rank models + event-heap capacity) — the memory the driver
    /// needs per run, which the rank-scaling figure plots.
    pub state_bytes: usize,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv(mut h: u64, v: u64) -> u64 {
    for b in v.to_le_bytes() {
        h = (h ^ b as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Event kinds, in tie-break order at equal times: faults first (a
/// crash at time T preempts a same-instant arrival — the message is
/// lost, on every partitioning), then injections (they only touch
/// their own rank's clocks), then arrivals, then acks. The relative
/// order of the traffic kinds is unchanged from the fault-free
/// driver, so inert plans reproduce its schedules exactly. Any fixed
/// order works — it must merely be partition-free.
const K_CRASH: u8 = 0;
const K_STALL: u8 = 1;
const K_INJECT: u8 = 2;
const K_ARRIVE: u8 = 3;
const K_ACK: u8 = 4;

/// One simulation event. The derived order on `(time, kind, rank, id)`
/// is the partition-independent total order; `peer` is routing payload
/// (the destination rank for arrivals, the original sender for acks,
/// the stall duration for stalls) and never decides order — message
/// ids are globally unique, fault ids are plan indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Ev {
    time: Time,
    kind: u8,
    rank: u32,
    id: u64,
    peer: u32,
}

/// Per-rank state: two serial resources, the injection window, and
/// the crash flag.
#[derive(Debug, Clone, Default)]
struct RankModel {
    cpu_free: Time,
    nic_free: Time,
    in_flight: u32,
    next_msg: u64,
    recvd: u64,
    fp: u64,
    dead: bool,
}

/// Shared per-message costs, identical at every rank.
#[derive(Debug, Clone, Copy)]
struct Costs {
    post_ns: Time,
    pack_ns: Time,
    unpack_ns: Time,
    tx_ns: Time,
    prop_ns: Time,
    bytes: u64,
}

struct ScaleShard {
    cfg: ScaleConfig,
    costs: Costs,
    /// Ranks owned: global rank `r` with `r % shards == shard_id`,
    /// stored at local index `r / shards`.
    ranks: Vec<RankModel>,
    shard_id: usize,
    pending: BinaryHeap<Reverse<Ev>>,
    finish_ns: Time,
    msgs: u64,
    /// Messages that arrived at a crashed rank and were dropped.
    lost: u64,
}

impl ScaleShard {
    fn msgs_per_rank(&self) -> u64 {
        match self.cfg.pattern {
            ScalePattern::Alltoall => self.cfg.ranks as u64 - 1,
            ScalePattern::Ring => 1,
        }
    }

    /// Destination of rank `r`'s `k`-th message (shifted schedule).
    fn dest(&self, r: u32, k: u64) -> u32 {
        ((r as u64 + 1 + k) % self.cfg.ranks as u64) as u32
    }

    #[inline]
    fn local(&mut self, rank: u32) -> &mut RankModel {
        let i = rank as usize / self.cfg.shards;
        &mut self.ranks[i]
    }

    #[inline]
    fn shard_of(&self, rank: u32) -> usize {
        rank as usize % self.cfg.shards
    }

    /// Queues an injection for rank `r`'s message `k` at `t` (a
    /// same-rank, hence same-shard, event: no lookahead required).
    fn queue_inject(&mut self, t: Time, r: u32, k: u64) {
        let mpr = self.msgs_per_rank();
        let id = r as u64 * mpr + k;
        let peer = self.dest(r, k);
        self.pending.push(Reverse(Ev {
            time: t,
            kind: K_INJECT,
            rank: r,
            id,
            peer,
        }));
        let m = self.local(r);
        m.in_flight += 1;
        m.next_msg = k + 1;
    }

    fn route(&mut self, ev: Ev, send: &mut dyn FnMut(usize, Ev)) {
        let dst = self.shard_of(ev.rank);
        if dst == self.shard_id {
            self.pending.push(Reverse(ev));
        } else {
            send(dst, ev);
        }
    }

    fn exec(&mut self, ev: Ev, send: &mut dyn FnMut(usize, Ev)) {
        let c = self.costs;
        match ev.kind {
            K_CRASH => {
                // Crash-stop: the rank goes silent. Everything it
                // would have done from here on — injections, unpacks,
                // ack processing — is dropped when its events execute.
                self.local(ev.rank).dead = true;
            }
            K_STALL => {
                // The transmit engine is busy doing nothing for the
                // duration carried in `peer`; queued sends serialize
                // behind it. No effect on an already-crashed rank.
                let m = self.local(ev.rank);
                if !m.dead {
                    m.nic_free = m.nic_free.max(ev.time) + ev.peer as Time;
                }
            }
            K_INJECT => {
                // Post + pack on the rank's serial CPU, then the
                // message serializes onto its NIC transmit engine.
                let m = self.local(ev.rank);
                if m.dead {
                    // Queued before the crash, never posted. The slot
                    // stays accounted in `in_flight`; the rank is dead
                    // and its final (in_flight, dead) pair is part of
                    // the fingerprint.
                    return;
                }
                let pack_done = ev.time.max(m.cpu_free) + c.post_ns + c.pack_ns;
                m.cpu_free = pack_done;
                let tx_done = pack_done.max(m.nic_free) + c.tx_ns;
                m.nic_free = tx_done;
                let arrive = Ev {
                    time: tx_done + c.prop_ns,
                    kind: K_ARRIVE,
                    rank: ev.peer,
                    id: ev.id,
                    peer: ev.rank,
                };
                self.route(arrive, send);
            }
            K_ARRIVE => {
                // Unpack on the receiver's serial CPU; completion ack
                // travels back one propagation delay.
                let m = self.local(ev.rank);
                if m.dead {
                    // Delivered to a crashed rank: the payload is lost
                    // and no ack ever returns — the sender's window
                    // slot is permanently stuck, exactly what its
                    // fingerprint records.
                    self.lost += 1;
                    return;
                }
                let done = ev.time.max(m.cpu_free) + c.unpack_ns;
                m.cpu_free = done;
                m.recvd += 1;
                m.fp = fnv(fnv(fnv(m.fp, ev.id), done), ev.peer as u64);
                self.msgs += 1;
                if done > self.finish_ns {
                    self.finish_ns = done;
                }
                let ack = Ev {
                    time: done + c.prop_ns,
                    kind: K_ACK,
                    rank: ev.peer,
                    id: ev.id,
                    peer: ev.rank,
                };
                self.route(ack, send);
            }
            _ => {
                // A window slot frees; the sender folds the ack into
                // its digest and injects its next message, if any.
                let mpr = self.msgs_per_rank();
                let m = self.local(ev.rank);
                if m.dead {
                    // Ack for a message sent before the crash; nobody
                    // is listening.
                    return;
                }
                m.in_flight -= 1;
                m.fp = fnv(fnv(m.fp, ev.id), ev.time);
                let k = m.next_msg;
                if k < mpr {
                    self.queue_inject(ev.time, ev.rank, k);
                }
            }
        }
    }
}

impl ShardWorld for ScaleShard {
    type Msg = Ev;

    fn next_time(&self) -> Option<Time> {
        self.pending.peek().map(|e| e.0.time)
    }

    fn advance(&mut self, horizon: Time, send: &mut dyn FnMut(usize, Ev)) {
        while let Some(e) = self.pending.peek() {
            if e.0.time >= horizon {
                break;
            }
            let ev = self.pending.pop().expect("peeked").0;
            self.exec(ev, send);
        }
    }

    fn deliver(&mut self, msg: Ev) {
        self.pending.push(Reverse(msg));
    }
}

/// Runs the configured collective; see the module docs for the
/// determinism contract. Cost models default when not supplied.
pub fn run_scale(cfg: &ScaleConfig) -> ScaleReport {
    run_scale_with(cfg, &NetConfig::default(), &HostConfig::default())
}

/// [`run_scale`] with explicit network and host cost models.
pub fn run_scale_with(cfg: &ScaleConfig, net: &NetConfig, host: &HostConfig) -> ScaleReport {
    assert!(cfg.ranks >= 2, "a collective needs at least two ranks");
    let mut cfg = cfg.clone();
    cfg.shards = cfg.shards.clamp(1, cfg.ranks as usize);

    // One compiled plan prices every message: the block list drives
    // the host copy model exactly as the full cluster's pack path
    // does.
    let wl = VectorWorkload::new(cfg.columns);
    let plan = TransferPlan::compile(&wl.ty, 1);
    let bytes = plan.total_bytes();
    let blocks = plan.blocks().len().max(1);
    let costs = Costs {
        post_ns: net.post_single_ns,
        pack_ns: host.copy_ns(blocks, bytes),
        unpack_ns: host.copy_ns(blocks, bytes),
        tx_ns: net.tx_ns(1, bytes),
        prop_ns: net.prop_delay_ns.max(1),
        bytes,
    };

    let nshards = cfg.shards;
    let mut shards: Vec<ScaleShard> = (0..nshards)
        .map(|shard_id| {
            let owned = (0..cfg.ranks).filter(|r| *r as usize % nshards == shard_id);
            ScaleShard {
                cfg: cfg.clone(),
                costs,
                ranks: owned.map(|_| RankModel::default()).collect(),
                shard_id,
                pending: BinaryHeap::new(),
                finish_ns: 0,
                msgs: 0,
                lost: 0,
            }
        })
        .collect();

    // Prime every rank's injection window at t = 0.
    for s in shards.iter_mut() {
        let mpr = s.msgs_per_rank();
        let prime = (s.cfg.window as u64).min(mpr);
        let (id, n) = (s.shard_id as u32, s.cfg.ranks);
        for r in (0..n).filter(|r| *r % nshards as u32 == id) {
            for k in 0..prime {
                s.queue_inject(0, r, k);
            }
        }
    }

    // Seed the chaos plan: each fault becomes an event in its target
    // rank's owning shard, keyed `(time, kind, rank, plan-index)` —
    // the same partition-free total order as the traffic, which is
    // the whole determinism argument.
    for (i, f) in cfg.faults.events.iter().enumerate() {
        assert!(
            f.rank() < cfg.ranks,
            "fault targets rank {} of {}",
            f.rank(),
            cfg.ranks
        );
        let (kind, stall) = match *f {
            ScaleFault::Crash { .. } => (K_CRASH, 0),
            ScaleFault::Stall { stall_ns, .. } => {
                (K_STALL, stall_ns.min(u32::MAX as Time) as u32)
            }
        };
        shards[f.rank() as usize % nshards].pending.push(Reverse(Ev {
            time: f.at_ns(),
            kind,
            rank: f.rank(),
            id: i as u64,
            peer: stall,
        }));
    }

    let mut sim = ShardSim::new(shards, costs.prop_ns, cfg.threads);
    let rounds = sim.run();
    let shards = sim.into_shards();

    // Fold per-rank digests in rank order; ranks interleave
    // round-robin across shards, so walk global rank ids.
    let mut fingerprint = FNV_OFFSET;
    let mut msgs = 0u64;
    let mut lost = 0u64;
    let mut crashed = 0u32;
    let mut finish_ns = 0;
    let mut state_bytes = 0usize;
    for s in &shards {
        msgs += s.msgs;
        lost += s.lost;
        finish_ns = finish_ns.max(s.finish_ns);
        state_bytes += s.ranks.capacity() * std::mem::size_of::<RankModel>()
            + s.pending.capacity() * std::mem::size_of::<Reverse<Ev>>();
    }
    let inert = cfg.faults.is_inert();
    for r in 0..cfg.ranks {
        let s = &shards[r as usize % nshards];
        let m = &s.ranks[r as usize / nshards];
        let expect = match cfg.pattern {
            ScalePattern::Alltoall => cfg.ranks as u64 - 1,
            ScalePattern::Ring => 1,
        };
        if inert {
            // Fault-free runs must complete exactly; chaotic runs
            // legitimately strand messages (dead receivers) and window
            // slots (acks that never came), all of it captured below.
            assert_eq!(
                m.recvd, expect,
                "rank {r} received {} of {expect} messages",
                m.recvd
            );
            assert_eq!(m.in_flight, 0, "rank {r} finished with sends in flight");
        }
        crashed += m.dead as u32;
        // Per-rank failure observations are part of the digest: a run
        // only fingerprints equal if every rank saw the same
        // completions, the same stuck slots, and the same crash fate.
        fingerprint = fnv(
            fnv(fnv(fnv(fingerprint, m.fp), m.recvd), m.in_flight as u64),
            m.dead as u64,
        );
    }

    ScaleReport {
        ranks: cfg.ranks,
        msgs,
        bytes: msgs * costs.bytes,
        finish_ns,
        rounds,
        fingerprint,
        crashed,
        lost,
        state_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alltoall_bit_identical_across_shard_and_thread_counts() {
        let reference = run_scale(&ScaleConfig {
            ranks: 48,
            shards: 1,
            threads: 1,
            ..ScaleConfig::default()
        });
        assert_eq!(reference.msgs, 48 * 47);
        for (shards, threads) in [(2, 1), (2, 2), (4, 2), (8, 8), (16, 3), (48, 8)] {
            let r = run_scale(&ScaleConfig {
                ranks: 48,
                shards,
                threads,
                ..ScaleConfig::default()
            });
            assert_eq!(
                (r.fingerprint, r.finish_ns, r.msgs, r.rounds),
                (
                    reference.fingerprint,
                    reference.finish_ns,
                    reference.msgs,
                    reference.rounds
                ),
                "shards={shards} threads={threads}"
            );
        }
    }

    #[test]
    fn ring_bit_identical_across_shard_and_thread_counts() {
        let cfg = ScaleConfig {
            ranks: 96,
            pattern: ScalePattern::Ring,
            columns: 16,
            ..ScaleConfig::default()
        };
        let reference = run_scale(&cfg);
        assert_eq!(reference.msgs, 96);
        for (shards, threads) in [(2, 2), (8, 4), (96, 8)] {
            let r = run_scale(&ScaleConfig {
                shards,
                threads,
                ..cfg.clone()
            });
            assert_eq!(
                (r.fingerprint, r.finish_ns),
                (reference.fingerprint, reference.finish_ns),
                "shards={shards} threads={threads}"
            );
        }
    }

    #[test]
    fn window_caps_concurrency_and_larger_messages_take_longer() {
        let small = run_scale(&ScaleConfig {
            ranks: 16,
            columns: 1,
            ..ScaleConfig::default()
        });
        let large = run_scale(&ScaleConfig {
            ranks: 16,
            columns: 64,
            ..ScaleConfig::default()
        });
        assert!(large.finish_ns > small.finish_ns);
        assert!(large.bytes > small.bytes);
        // A wider window can only help (or tie) the finish time.
        let wide = run_scale(&ScaleConfig {
            ranks: 16,
            columns: 1,
            window: 15,
            ..ScaleConfig::default()
        });
        assert!(wide.finish_ns <= small.finish_ns);
    }

    #[test]
    fn seeded_plan_is_reproducible_and_inert_plan_changes_nothing() {
        let a = ScaleFaultPlan::seeded(0xBEEF, 64, 3, 5, 1_000_000);
        let b = ScaleFaultPlan::seeded(0xBEEF, 64, 3, 5, 1_000_000);
        assert_eq!(a, b);
        assert_eq!(a.events.len(), 8);
        let crashes: Vec<u32> = a
            .events
            .iter()
            .filter_map(|f| match f {
                ScaleFault::Crash { rank, .. } => Some(*rank),
                _ => None,
            })
            .collect();
        assert_eq!(crashes.len(), 3);
        let mut distinct = crashes.clone();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(distinct.len(), 3, "crashes must hit distinct ranks");
        assert_ne!(
            a,
            ScaleFaultPlan::seeded(0xBEF0, 64, 3, 5, 1_000_000),
            "different seeds should give different plans"
        );

        // An inert plan is byte-for-byte the fault-free driver.
        let clean = run_scale(&ScaleConfig {
            ranks: 32,
            ..ScaleConfig::default()
        });
        let with_inert = run_scale(&ScaleConfig {
            ranks: 32,
            faults: ScaleFaultPlan::none(),
            ..ScaleConfig::default()
        });
        assert_eq!(clean, with_inert);
        assert_eq!(clean.crashed, 0);
        assert_eq!(clean.lost, 0);
    }

    #[test]
    fn chaotic_run_bit_identical_across_shard_and_thread_counts() {
        let faults = ScaleFaultPlan::seeded(0xC4A0, 48, 4, 6, 2_000_000);
        let cfg = ScaleConfig {
            ranks: 48,
            faults,
            ..ScaleConfig::default()
        };
        let reference = run_scale(&cfg);
        assert_eq!(reference.crashed, 4);
        assert!(reference.msgs < 48 * 47, "crashes must strand traffic");
        for (shards, threads) in [(2, 1), (2, 2), (8, 4), (16, 3), (48, 8)] {
            let r = run_scale(&ScaleConfig {
                shards,
                threads,
                ..cfg.clone()
            });
            assert_eq!(
                (r.fingerprint, r.finish_ns, r.msgs, r.crashed, r.lost),
                (
                    reference.fingerprint,
                    reference.finish_ns,
                    reference.msgs,
                    reference.crashed,
                    reference.lost
                ),
                "shards={shards} threads={threads}"
            );
        }
    }

    #[test]
    fn stalls_delay_but_lose_nothing() {
        let clean = run_scale(&ScaleConfig {
            ranks: 16,
            ..ScaleConfig::default()
        });
        let stalled = run_scale(&ScaleConfig {
            ranks: 16,
            faults: ScaleFaultPlan {
                seed: 0,
                events: vec![
                    ScaleFault::Stall {
                        at_ns: 10,
                        rank: 0,
                        stall_ns: 500_000,
                    },
                    ScaleFault::Stall {
                        at_ns: 10,
                        rank: 7,
                        stall_ns: 500_000,
                    },
                ],
            },
            ..ScaleConfig::default()
        });
        assert_eq!(stalled.msgs, clean.msgs, "stalls must not lose messages");
        assert_eq!(stalled.crashed, 0);
        assert_eq!(stalled.lost, 0);
        assert!(
            stalled.finish_ns > clean.finish_ns,
            "a half-millisecond NIC stall must show up in the finish time"
        );
    }

    #[test]
    fn crash_strands_peers_and_loses_in_flight_messages() {
        // Rank 1 dies early in a 8-rank alltoall: everyone else keeps
        // going, traffic toward rank 1 is lost, and the run still
        // quiesces (no hang) with the losses accounted.
        let r = run_scale(&ScaleConfig {
            ranks: 8,
            faults: ScaleFaultPlan {
                seed: 0,
                events: vec![ScaleFault::Crash { at_ns: 1, rank: 1 }],
            },
            ..ScaleConfig::default()
        });
        assert_eq!(r.crashed, 1);
        assert!(r.lost > 0, "peers keep sending to the dead rank");
        assert!(r.msgs > 0, "survivors still exchange traffic");
        assert!(r.msgs + r.lost < 8 * 7, "the dead rank stops sending");
    }

    #[test]
    fn state_scales_with_ranks_not_ranks_squared() {
        // Ring traffic holds the window at 1 message per rank, so the
        // driver's state must grow linearly with ranks.
        let a = run_scale(&ScaleConfig {
            ranks: 256,
            pattern: ScalePattern::Ring,
            ..ScaleConfig::default()
        });
        let b = run_scale(&ScaleConfig {
            ranks: 1024,
            pattern: ScalePattern::Ring,
            ..ScaleConfig::default()
        });
        // 4× the ranks: well under 16× (quadratic) growth; heap
        // capacity doubling makes exact linearity too strict.
        assert!(
            b.state_bytes < a.state_bytes * 8,
            "state {} -> {}",
            a.state_bytes,
            b.state_bytes
        );
    }
}
