#![warn(missing_docs)]
//! Benchmark workloads and measurement drivers.
//!
//! Reproduces the paper's measurement methodology:
//!
//! * [`vector`] — the §3.2 vector micro-benchmark: `x` columns of a
//!   128 × 4096 integer array, and the `Manual` / `Multiple` / `Contig`
//!   comparison schemes of Fig. 2,
//! * [`structdt`] — the Fig. 10 struct datatype with exponentially
//!   growing blocks and gaps equal to the first block,
//! * [`drivers`] — ping-pong latency, windowed bandwidth (100
//!   consecutive messages, §8.2), and collective timing drivers with
//!   built-in data verification,
//! * [`sweep`] — a parallel parameter-sweep runner: independent
//!   deterministic simulations fan out across OS threads and results
//!   return in input order,
//! * [`scale`] — a sharded large-rank collective driver: thousands of
//!   ranks priced by the calibrated cost models, bit-identical across
//!   shard and thread counts.

pub mod drivers;
pub mod scale;
pub mod structdt;
pub mod sweep;
pub mod taxonomy;
pub mod vector;

pub use drivers::{
    alltoall_oversub, alltoall_time, bandwidth, bandwidth_device, incast, incast_spec, pingpong,
    pingpong_asym, pingpong_contig, pingpong_manual, pingpong_multiple, BandwidthResult,
    IncastResult, PingPongResult,
};
pub use scale::{
    run_scale, run_scale_with, ScaleConfig, ScaleFault, ScaleFaultPlan, ScalePattern, ScaleReport,
};
pub use structdt::struct_datatype;
pub use vector::{vector_datatype, VectorWorkload};
