//! Result tables: one x value per row, one series per column.

/// A figure's data: x-axis values against named series.
#[derive(Debug, Clone)]
pub struct Table {
    /// Figure title.
    pub title: String,
    /// Meaning of the x column.
    pub xlabel: String,
    /// Unit of the series values (e.g. "us", "MB/s", "ms").
    pub unit: String,
    /// Series names, in column order.
    pub series: Vec<String>,
    /// `(x, values)` rows; `values.len() == series.len()`.
    pub rows: Vec<(u64, Vec<f64>)>,
    /// Free-form notes (expected shape, observed factors).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, xlabel: &str, unit: &str, series: &[&str]) -> Self {
        Self {
            title: title.to_owned(),
            xlabel: xlabel.to_owned(),
            unit: unit.to_owned(),
            series: series.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends one row.
    pub fn push(&mut self, x: u64, values: Vec<f64>) {
        assert_eq!(values.len(), self.series.len(), "row width mismatch");
        self.rows.push((x, values));
    }

    /// Value of `series` at `x`.
    pub fn value(&self, x: u64, series: &str) -> Option<f64> {
        let col = self.series.iter().position(|s| s == series)?;
        self.rows
            .iter()
            .find(|(rx, _)| *rx == x)
            .map(|(_, v)| v[col])
    }

    /// Ratio `a / b` at `x` — improvement factors as the paper states
    /// them.
    pub fn ratio(&self, x: u64, a: &str, b: &str) -> Option<f64> {
        Some(self.value(x, a)? / self.value(x, b)?)
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {} [{}]\n", self.title, self.unit));
        let mut widths: Vec<usize> = self.series.iter().map(|s| s.len().max(10)).collect();
        for (_, vals) in &self.rows {
            for (i, v) in vals.iter().enumerate() {
                widths[i] = widths[i].max(format!("{v:.2}").len());
            }
        }
        out.push_str(&format!("{:>12}", self.xlabel));
        for (s, w) in self.series.iter().zip(&widths) {
            out.push_str(&format!("  {s:>w$}"));
        }
        out.push('\n');
        for (x, vals) in &self.rows {
            out.push_str(&format!("{x:>12}"));
            for (v, w) in vals.iter().zip(&widths) {
                out.push_str(&format!("  {:>w$}", format!("{v:.2}")));
            }
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        out
    }

    /// Renders CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.xlabel);
        for s in &self.series {
            out.push(',');
            out.push_str(s);
        }
        out.push('\n');
        for (x, vals) in &self.rows {
            out.push_str(&x.to_string());
            for v in vals {
                out.push_str(&format!(",{v:.4}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Test", "cols", "us", &["a", "b"]);
        t.push(1, vec![10.0, 20.0]);
        t.push(2, vec![30.0, 15.0]);
        t
    }

    #[test]
    fn value_and_ratio() {
        let t = sample();
        assert_eq!(t.value(1, "a"), Some(10.0));
        assert_eq!(t.value(2, "b"), Some(15.0));
        assert_eq!(t.value(3, "a"), None);
        assert_eq!(t.value(1, "zzz"), None);
        assert_eq!(t.ratio(2, "a", "b"), Some(2.0));
    }

    #[test]
    fn render_contains_everything() {
        let mut t = sample();
        t.notes.push("shape holds".into());
        let r = t.render();
        assert!(r.contains("Test"));
        assert!(r.contains("cols"));
        assert!(r.contains("30.00"));
        assert!(r.contains("shape holds"));
    }

    #[test]
    fn csv_roundtrip_shape() {
        let t = sample();
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "cols,a,b");
        assert!(lines[1].starts_with("1,10.0000"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = sample();
        t.push(3, vec![1.0]);
    }
}
