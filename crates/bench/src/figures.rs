//! One function per figure of the paper's evaluation (§8), plus the
//! extension experiments from DESIGN.md.
//!
//! Latencies are reported in microseconds, bandwidths in MB/s
//! (decimal), alltoall times in milliseconds — matching the paper's
//! axes. Points within a series run as independent deterministic
//! simulations fanned out by [`ibdt_workloads::sweep::run_sweep`].

use crate::table::Table;
use ibdt_datatype::Datatype;
use ibdt_memreg::ogr;
use ibdt_mpicore::{
    ClusterSpec, FaultPlan, LinkFault, Scheme, ShmConfig, ShmCopyMode, TransportConfig,
};
use ibdt_workloads::drivers::{
    alltoall_time, bandwidth, bandwidth_device, incast, incast_spec, pingpong, pingpong_asym,
    pingpong_contig, pingpong_manual, pingpong_manual_ty, pingpong_multiple, PingPongResult,
};
use ibdt_workloads::taxonomy::DtClass;
use ibdt_workloads::structdt::struct_datatype;
use ibdt_workloads::sweep::run_sweep;
use ibdt_workloads::vector::VectorWorkload;

/// Column counts of the vector micro-benchmark (powers of two, as in
/// Figs. 2/8/9).
pub const COLUMNS: [u64; 12] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048];

const WARMUP: u32 = 2;
const ITERS: u32 = 5;
/// The paper pushes 100 consecutive messages in the bandwidth test.
const BW_WINDOW: u32 = 100;

fn spec(scheme: Scheme) -> ClusterSpec {
    let mut s = ClusterSpec::default();
    s.mpi.scheme = scheme;
    s
}

fn worst_spec(scheme: Scheme) -> ClusterSpec {
    let mut s = spec(scheme);
    s.mpi.pindown_cache = false;
    s.mpi.reuse_internal_bufs = false;
    s
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1e3
}

fn mbs(bps: f64) -> f64 {
    bps / 1e6
}

fn latency_series(s: ClusterSpec, xs: &[u64]) -> Vec<f64> {
    run_sweep(xs.to_vec(), |&x| {
        let w = VectorWorkload::new(x);
        us(pingpong(&s, &w.ty, 1, WARMUP, ITERS).one_way_ns)
    })
}

fn bandwidth_series(s: ClusterSpec, xs: &[u64]) -> Vec<f64> {
    run_sweep(xs.to_vec(), |&x| {
        let w = VectorWorkload::new(x);
        mbs(bandwidth(&s, &w.ty, 1, BW_WINDOW).bytes_per_sec)
    })
}

/// Fig. 2 — the motivating example: vector ping-pong latency of
/// `Contig`, `Datatype`, `Manual`, `Multiple`, and `DT+reg`.
pub fn fig2() -> Table {
    let mut t = Table::new(
        "Fig. 2: Vector datatype transfer latency, 128x4096 int array",
        "columns",
        "us",
        &["Contig", "Datatype", "Manual", "Multiple", "DT+reg"],
    );
    let xs = COLUMNS;
    let contig = run_sweep(xs.to_vec(), |&x| {
        let w = VectorWorkload::new(x);
        us(pingpong_contig(&spec(Scheme::Generic), w.size, WARMUP, ITERS).one_way_ns)
    });
    let datatype = latency_series(spec(Scheme::Generic), &xs);
    let manual = run_sweep(xs.to_vec(), |&x| {
        let w = VectorWorkload::new(x);
        us(pingpong_manual(&spec(Scheme::Generic), &w, WARMUP, ITERS).one_way_ns)
    });
    let multiple = run_sweep(xs.to_vec(), |&x| {
        let w = VectorWorkload::new(x);
        us(pingpong_multiple(&spec(Scheme::Generic), &w, WARMUP, ITERS).one_way_ns)
    });
    let dt_reg = run_sweep(xs.to_vec(), |&x| {
        let w = VectorWorkload::new(x);
        us(pingpong(&worst_spec(Scheme::Generic), &w.ty, 1, WARMUP, ITERS).one_way_ns)
    });
    for (i, &x) in xs.iter().enumerate() {
        t.push(
            x,
            vec![contig[i], datatype[i], manual[i], multiple[i], dt_reg[i]],
        );
    }
    t.notes.push(
        "expected shape: no scheme reaches 1/4 of Contig at mid sizes; Manual slightly \
         beats Datatype; DT+reg much slower; Multiple wins only at large blocks"
            .into(),
    );
    t
}

/// Fig. 8 — vector ping-pong latency of the implemented schemes.
pub fn fig8() -> Table {
    let mut t = Table::new(
        "Fig. 8: Latency comparison (vector micro-benchmark)",
        "columns",
        "us",
        &["Generic", "BC-SPUP", "RWG-UP", "Multi-W"],
    );
    let series: Vec<Vec<f64>> = [
        Scheme::Generic,
        Scheme::BcSpup,
        Scheme::RwgUp,
        Scheme::MultiW,
    ]
    .into_iter()
    .map(|s| latency_series(spec(s), &COLUMNS))
    .collect();
    for (i, &x) in COLUMNS.iter().enumerate() {
        t.push(x, series.iter().map(|v| v[i]).collect());
    }
    t.notes.push(
        "expected: BC-SPUP ~1.5x over Generic at large sizes; RWG-UP up to ~1.8x; \
         Multi-W up to ~3.4x at large columns, collapsing at small columns"
            .into(),
    );
    t
}

/// Fig. 9 — vector bandwidth (100-message window).
pub fn fig9() -> Table {
    let mut t = Table::new(
        "Fig. 9: Bandwidth comparison (vector micro-benchmark)",
        "columns",
        "MB/s",
        &["Generic", "BC-SPUP", "RWG-UP", "Multi-W"],
    );
    let series: Vec<Vec<f64>> = [
        Scheme::Generic,
        Scheme::BcSpup,
        Scheme::RwgUp,
        Scheme::MultiW,
    ]
    .into_iter()
    .map(|s| bandwidth_series(spec(s), &COLUMNS))
    .collect();
    for (i, &x) in COLUMNS.iter().enumerate() {
        t.push(x, series.iter().map(|v| v[i]).collect());
    }
    t.notes.push(
        "expected: BC-SPUP/RWG-UP 1.2-2.0x over Generic; Multi-W 1.4-3.6x above 64 \
         columns, degraded between 4 and 64 columns"
            .into(),
    );
    t
}

/// Fig. 11 — `MPI_Alltoall` with the Fig. 10 struct datatype, 8 ranks.
pub fn fig11() -> Table {
    let mut t = Table::new(
        "Fig. 11: MPI_Alltoall performance (struct datatype, 8 processes)",
        "last_block_ints",
        "ms",
        &["Generic", "BC-SPUP", "RWG-UP", "Multi-W"],
    );
    let sizes: Vec<u64> = (0..7).map(|k| 2048u64 << k).collect(); // 2048..131072
    let schemes = [
        Scheme::Generic,
        Scheme::BcSpup,
        Scheme::RwgUp,
        Scheme::MultiW,
    ];
    // One sweep over the full (size, scheme) grid.
    let mut grid: Vec<(u64, Scheme)> = Vec::new();
    for &x in &sizes {
        for s in schemes {
            grid.push((x, s));
        }
    }
    let results = run_sweep(grid, |&(x, s)| {
        let ty = struct_datatype(x);
        let mut sp = spec(s);
        sp.nprocs = 8;
        let (per_op, _) = alltoall_time(&sp, &ty, 1, 3);
        per_op as f64 / 1e6
    });
    for (i, &x) in sizes.iter().enumerate() {
        t.push(x, (0..4).map(|j| results[i * 4 + j]).collect());
    }
    t.notes.push(
        "expected: all schemes beat Generic; Multi-W avg ~2.0x (min 1.8, max 2.1), \
         BC-SPUP avg ~1.3x, RWG-UP avg ~1.3x"
            .into(),
    );
    t
}

/// Fig. 12 — effect of segment unpack in RWG-UP (bandwidth).
pub fn fig12() -> Table {
    let mut t = Table::new(
        "Fig. 12: Effects of segment unpack (RWG-UP bandwidth)",
        "columns",
        "MB/s",
        &["segment unpack", "whole unpack"],
    );
    let with = bandwidth_series(spec(Scheme::RwgUp), &COLUMNS);
    let without = {
        let mut s = spec(Scheme::RwgUp);
        s.mpi.segment_unpack = false;
        bandwidth_series(s, &COLUMNS)
    };
    for (i, &x) in COLUMNS.iter().enumerate() {
        t.push(x, vec![with[i], without[i]]);
    }
    t.notes
        .push("expected: ~1.3x bandwidth from segment unpack at large sizes".into());
    t
}

/// Fig. 13 — effect of list descriptor post in Multi-W (bandwidth).
pub fn fig13() -> Table {
    let mut t = Table::new(
        "Fig. 13: Effects of list descriptor post (Multi-W bandwidth)",
        "columns",
        "MB/s",
        &["list post", "single post"],
    );
    let list = bandwidth_series(spec(Scheme::MultiW), &COLUMNS);
    let single = {
        let mut s = spec(Scheme::MultiW);
        s.mpi.list_post = false;
        bandwidth_series(s, &COLUMNS)
    };
    for (i, &x) in COLUMNS.iter().enumerate() {
        t.push(x, vec![list[i], single[i]]);
    }
    t.notes
        .push("expected: list post 1.2-2.0x over single post (avg ~1.6x)".into());
    t
}

/// Fig. 14 — worst-case buffer usage: every buffer registered on the
/// fly (pin-down cache disabled, internal buffers never reused).
pub fn fig14() -> Table {
    let mut t = Table::new(
        "Fig. 14: Latency in the worst case of buffer usage",
        "columns",
        "us",
        &["Generic", "BC-SPUP", "RWG-UP", "Multi-W"],
    );
    let series: Vec<Vec<f64>> = [
        Scheme::Generic,
        Scheme::BcSpup,
        Scheme::RwgUp,
        Scheme::MultiW,
    ]
    .into_iter()
    .map(|s| latency_series(worst_spec(s), &COLUMNS))
    .collect();
    for (i, &x) in COLUMNS.iter().enumerate() {
        t.push(x, series.iter().map(|v| v[i]).collect());
    }
    t.notes.push(
        "expected: below ~512 columns RWG-UP/Multi-W lose (whole-array registration \
         dominates); above, they win on reduced copies; BC-SPUP always >= Generic"
            .into(),
    );
    t
}

/// X1 — P-RRS (designed but not implemented in the paper): symmetric
/// vector latency vs the other copy-reduced schemes, plus the
/// asymmetric contiguous-sender case P-RRS targets (§5.2).
pub fn x1() -> (Table, Table) {
    let mut sym = Table::new(
        "X1a: P-RRS vs other schemes (symmetric vector latency)",
        "columns",
        "us",
        &["BC-SPUP", "RWG-UP", "P-RRS"],
    );
    let series: Vec<Vec<f64>> = [Scheme::BcSpup, Scheme::RwgUp, Scheme::PRrs]
        .into_iter()
        .map(|s| latency_series(spec(s), &COLUMNS))
        .collect();
    for (i, &x) in COLUMNS.iter().enumerate() {
        sym.push(x, series.iter().map(|v| v[i]).collect());
    }
    sym.notes.push(
        "expected (per §5.2): P-RRS trails RWG-UP — RDMA read is slower than write \
         and pipelining costs an extra control message per segment"
            .into(),
    );

    let mut asym = Table::new(
        "X1b: asymmetric contiguous sender -> vector receiver",
        "columns",
        "us",
        &["BC-SPUP", "RWG-UP", "P-RRS"],
    );
    let xs = [16u64, 64, 256, 1024, 2048];
    let grid: Vec<(u64, Scheme)> = xs
        .iter()
        .flat_map(|&x| {
            [Scheme::BcSpup, Scheme::RwgUp, Scheme::PRrs]
                .into_iter()
                .map(move |s| (x, s))
        })
        .collect();
    let res = run_sweep(grid, |&(x, s)| {
        let w = VectorWorkload::new(x);
        let contig = Datatype::contiguous(w.size, &Datatype::byte()).expect("contig");
        us(pingpong_asym(&spec(s), &contig, 1, &w.ty, 1, WARMUP, ITERS).one_way_ns)
    });
    for (i, &x) in xs.iter().enumerate() {
        asym.push(x, (0..3).map(|j| res[i * 3 + j]).collect());
    }
    asym.notes.push(
        "P-RRS avoids receiver unpack; with a contiguous sender there is no pack \
         either, so it closes on RWG-UP here"
            .into(),
    );
    (sym, asym)
}

/// X2 — adaptive scheme selection (§6) against every fixed scheme.
pub fn x2() -> Table {
    let mut t = Table::new(
        "X2: Adaptive scheme choice vs fixed schemes (vector latency)",
        "columns",
        "us",
        &["Adaptive", "Generic", "BC-SPUP", "RWG-UP", "Multi-W"],
    );
    let series: Vec<Vec<f64>> = [
        Scheme::Adaptive,
        Scheme::Generic,
        Scheme::BcSpup,
        Scheme::RwgUp,
        Scheme::MultiW,
    ]
    .into_iter()
    .map(|s| latency_series(spec(s), &COLUMNS))
    .collect();
    for (i, &x) in COLUMNS.iter().enumerate() {
        t.push(x, series.iter().map(|v| v[i]).collect());
    }
    t.notes
        .push("expected: Adaptive tracks the best fixed scheme at every point".into());
    t
}

/// X3 — registration strategy ablation: OGR vs per-block vs
/// whole-extent modelled round-trip cost for the vector layout.
pub fn x3() -> Table {
    let mut t = Table::new(
        "X3: Registration strategy cost (128 x 4KB blocks, variable gap)",
        "gap_pages",
        "us",
        &["per-block", "whole-extent", "OGR"],
    );
    let host = ibdt_ibsim::HostConfig::default();
    // 128 blocks of one page each, separated by a growing gap. Small
    // gaps favour one big registration; huge gaps favour per-block;
    // OGR's cost model must track the winner and beat both in between.
    for gap_pages in [0u64, 1, 2, 8, 32, 64, 128, 512, 2048, 8192] {
        let stride = (1 + gap_pages) * 4096;
        let blocks: Vec<(u64, u64)> = (0..128u64).map(|i| (4096 + i * stride, 4096)).collect();
        let per = ogr::plan_per_block(&blocks, &host.reg).round_trip_ns();
        let whole = ogr::plan_whole_extent(&blocks, &host.reg).round_trip_ns();
        let o = ogr::plan(&blocks, &host.reg).round_trip_ns();
        t.push(gap_pages, vec![us(per), us(whole), us(o)]);
    }
    t.notes.push(
        "OGR must match the better of the two baselines at the extremes and never \
         lose to either (§5.4.1's trade-off)"
            .into(),
    );
    t
}

/// X4 — BC-SPUP segment size sweep (the §7.2 tuning knob).
pub fn x4() -> Table {
    let mut t = Table::new(
        "X4: BC-SPUP segment size (1024-column vector)",
        "segment_KB",
        "us | MB/s",
        &["latency_us", "bandwidth_MBs"],
    );
    let sizes = [16u64, 32, 64, 128, 256, 512];
    let res = run_sweep(sizes.to_vec(), |&kb| {
        let mut s = spec(Scheme::BcSpup);
        s.mpi.max_seg_size = kb * 1024;
        let w = VectorWorkload::new(1024);
        let lat = us(pingpong(&s, &w.ty, 1, WARMUP, ITERS).one_way_ns);
        let bw = mbs(bandwidth(&s, &w.ty, 1, 30).bytes_per_sec);
        (lat, bw)
    });
    for (i, &kb) in sizes.iter().enumerate() {
        t.push(kb, vec![res[i].0, res[i].1]);
    }
    t.notes.push(
        "small segments pipeline deeply but pay per-segment overheads; large ones \
         lose overlap — a shallow optimum in the middle is expected"
            .into(),
    );
    t
}

/// X5 — the §7.1 eager path: direct pack into eager buffers vs the
/// original two extra copies.
pub fn x5() -> Table {
    let mut t = Table::new(
        "X5: Small datatype messages in the eager protocol",
        "columns",
        "us",
        &["original (Generic)", "direct pack (new)"],
    );
    for &x in &[1u64, 2] {
        let w = VectorWorkload::new(x);
        let old = us(pingpong(&spec(Scheme::Generic), &w.ty, 1, WARMUP, ITERS).one_way_ns);
        let new = us(pingpong(&spec(Scheme::BcSpup), &w.ty, 1, WARMUP, ITERS).one_way_ns);
        t.push(x, vec![old, new]);
    }
    t.notes
        .push("two copies saved (§7.1): perceivable constant improvement".into());
    t
}

/// X6 — the §10 future-work Hybrid scheme: per-block selection within
/// one message, on datatypes mixing large and small blocks.
pub fn x6() -> Table {
    let mut t = Table::new(
        "X6: Hybrid per-block scheme (mixed 8KiB/small-block struct latency)",
        "small_block_B",
        "us",
        &["BC-SPUP", "Multi-W", "Hybrid"],
    );
    // 64 fields alternating 8 KiB and `small` bytes.
    let smalls = [16u64, 32, 64, 128, 256, 512];
    let grid: Vec<(u64, Scheme)> = smalls
        .iter()
        .flat_map(|&x| {
            [Scheme::BcSpup, Scheme::MultiW, Scheme::Hybrid]
                .into_iter()
                .map(move |s| (x, s))
        })
        .collect();
    let res = run_sweep(grid, |&(small, s)| {
        let mut fields = Vec::new();
        let mut displ = 0i64;
        for i in 0..64 {
            let len = if i % 2 == 0 { 8192u64 } else { small };
            fields.push((len, displ, Datatype::byte()));
            displ += len as i64 + 512;
        }
        let ty = Datatype::struct_(&fields).expect("mixed struct");
        us(pingpong(&spec(s), &ty, 1, WARMUP, ITERS).one_way_ns)
    });
    for (i, &x) in smalls.iter().enumerate() {
        t.push(x, (0..3).map(|j| res[i * 3 + j]).collect());
    }
    t.notes.push(
        "Hybrid writes the 8 KiB blocks directly and packs the small ones; it          should beat both pure strategies across the sweep"
            .into(),
    );
    t
}

/// X7 — one-sided RMA extension: Put+Fence vs the best two-sided
/// scheme for the vector layout (the §1 "RMA" consumer of derived
/// datatypes, built on the Multi-W machinery).
pub fn x7() -> Table {
    use ibdt_mpicore::{AppOp, Cluster};
    let mut t = Table::new(
        "X7: One-sided Put vs two-sided send (vector latency)",
        "columns",
        "us",
        &["two-sided (Adaptive)", "Put+Fence"],
    );
    let xs = [16u64, 64, 256, 1024, 2048];
    let two = run_sweep(xs.to_vec(), |&x| {
        let w = VectorWorkload::new(x);
        us(pingpong(&spec(Scheme::Adaptive), &w.ty, 1, WARMUP, ITERS).one_way_ns)
    });
    let one = run_sweep(xs.to_vec(), |&x| {
        let w = VectorWorkload::new(x);
        let mut sp = spec(Scheme::Adaptive);
        sp.mpi.scheme = Scheme::Adaptive;
        let mut cluster = Cluster::new(sp);
        let span = w.ty.true_ub() as u64 + 64;
        let obuf = cluster.alloc(0, span, 4096);
        let wbuf = cluster.alloc(1, span, 4096);
        cluster.fill_pattern(0, obuf, span, 1);
        let mut p0 = vec![AppOp::WinCreate {
            win: 0,
            addr: 0,
            len: 0,
        }];
        let mut p1 = vec![AppOp::WinCreate {
            win: 0,
            addr: wbuf,
            len: span,
        }];
        // Warmup epoch + measured epochs.
        for it in 0..(WARMUP + ITERS) {
            if it == WARMUP {
                p0.push(AppOp::MarkTime { slot: 0 });
            }
            p0.push(AppOp::Put {
                win: 0,
                target: 1,
                obuf,
                ocount: 1,
                oty: w.ty.clone(),
                toff: 0,
                tcount: 1,
                tty: w.ty.clone(),
            });
            p0.push(AppOp::Fence);
            p1.push(AppOp::Fence);
        }
        p0.push(AppOp::MarkTime { slot: 1 });
        let stats = cluster.run(vec![p0, p1]);
        us(stats.mark_interval(0, 0, 1) / ITERS as u64)
    });
    for (i, &x) in xs.iter().enumerate() {
        t.push(x, vec![two[i], one[i]]);
    }
    t.notes.push(
        "Put+Fence skips the rendezvous handshake and all receiver work; its cost          is the fence barrier — cheaper for large blocks, pricier for small ones"
            .into(),
    );
    t
}

/// X8 — cost-model sensitivity: how the headline Multi-W and BC-SPUP
/// improvement factors respond to the calibration's two main knobs
/// (host copy bandwidth and link bandwidth). The paper's conclusions
/// should hold across the plausible hardware range, not only at our
/// chosen point.
pub fn x8() -> Table {
    let mut t = Table::new(
        "X8: Sensitivity of improvement factors to the cost model (2048 columns)",
        "copy_MBps",
        "factor vs Generic",
        &[
            "MultiW@870MBps",
            "BCSPUP@870MBps",
            "MultiW@600MBps",
            "BCSPUP@600MBps",
        ],
    );
    let copies = [700u64, 950, 1200, 1600];
    let links = [870_000_000u64, 600_000_000];
    let grid: Vec<(u64, u64, Scheme)> = copies
        .iter()
        .flat_map(|&c| {
            links.iter().flat_map(move |&l| {
                [Scheme::Generic, Scheme::MultiW, Scheme::BcSpup]
                    .into_iter()
                    .map(move |s| (c, l, s))
            })
        })
        .collect();
    let res = run_sweep(grid.clone(), |&(c, l, s)| {
        let mut sp = spec(s);
        sp.host.copy_bw_bps = c * 1_000_000;
        sp.net.link_bw_bps = l;
        let w = VectorWorkload::new(2048);
        pingpong(&sp, &w.ty, 1, WARMUP, ITERS).one_way_ns as f64
    });
    let lookup = |c: u64, l: u64, s: Scheme| -> f64 {
        let idx = grid
            .iter()
            .position(|&(gc, gl, gs)| gc == c && gl == l && gs == s)
            .expect("grid point");
        res[idx]
    };
    for &c in &copies {
        let row = vec![
            lookup(c, links[0], Scheme::Generic) / lookup(c, links[0], Scheme::MultiW),
            lookup(c, links[0], Scheme::Generic) / lookup(c, links[0], Scheme::BcSpup),
            lookup(c, links[1], Scheme::Generic) / lookup(c, links[1], Scheme::MultiW),
            lookup(c, links[1], Scheme::Generic) / lookup(c, links[1], Scheme::BcSpup),
        ];
        t.push(c, row);
    }
    t.notes.push(
        "the ordering (Multi-W > BC-SPUP > 1) must hold at every grid point; the          absolute factors grow as copies get slower relative to the link — the          paper's 3.4x corresponds to a slower-copy corner of this grid"
            .into(),
    );
    t
}

/// X9 — robustness ablation: the vector ping-pong under a seeded
/// fault-plan sweep. Reports the latency penalty of recovery together
/// with the fault/retry counters the reliability layer exports, so the
/// CSV shows *why* each point got slower (retransmissions, RNR
/// backoff) and that no protocol-visible errors leaked through.
pub fn x9() -> Table {
    let mut t = Table::new(
        "X9: Robustness ablation — BC-SPUP latency + recovery counters under faults",
        "fault_pct",
        "mixed",
        &[
            "latency_us",
            "drops",
            "corruptions",
            "delays",
            "retransmits",
            "rnr_backoff_retries",
            "scheme_fallbacks",
            "rndv_rerequests",
            "errors",
        ],
    );
    let rates = [0u64, 2, 5, 10, 15];
    let rows = run_sweep(rates.to_vec(), |&pct| {
        let mut sp = spec(Scheme::BcSpup);
        sp.faults = FaultPlan {
            seed: 0x0B57_0000 + pct,
            drop_rate: pct as f64 / 100.0,
            corrupt_rate: pct as f64 / 200.0,
            delay_rate: pct as f64 / 100.0,
            max_delay_ns: 20_000,
            ..FaultPlan::none()
        };
        let w = VectorWorkload::new(256);
        let r = pingpong(&sp, &w.ty, 1, WARMUP, ITERS);
        let c = |f: fn(&ibdt_mpicore::rank::RankCounters) -> u64| -> f64 {
            r.stats.counters.iter().map(f).sum::<u64>() as f64
        };
        vec![
            us(r.one_way_ns),
            r.stats.drops_injected as f64,
            r.stats.corruptions_injected as f64,
            r.stats.delays_injected as f64,
            r.stats.retransmits as f64,
            r.stats.rnr_backoff_retries as f64,
            c(|k| k.scheme_fallbacks),
            c(|k| k.rndv_rerequests),
            r.stats.total_errors() as f64,
        ]
    });
    for (&pct, row) in rates.iter().zip(rows) {
        t.push(pct, row);
    }
    t.notes.push(
        "errors must be 0 at every point (the RC retry budget absorbs these rates); \
         latency grows with the injected rate while retransmits track drops+corruptions"
            .into(),
    );
    t
}

/// X10 — connection-lifecycle ablation: one vector round-trip with a
/// link failure injected mid-transfer, per scheme. Three latencies are
/// compared — fault-free, APM path migration, and full QP
/// re-establishment (APM disabled) — together with the recovery
/// counters the connection manager exports, so the CSV shows which
/// mechanism absorbed the failure and that no errors surfaced.
pub fn x10() -> Table {
    let mut t = Table::new(
        "X10: Connection lifecycle — failover latency + recovery counters per scheme",
        "scheme_idx",
        "mixed",
        &[
            "clean_us",
            "apm_us",
            "reconnect_us",
            "migrations",
            "qp_reestablished",
            "resumed_chunks",
            "errors",
        ],
    );
    let schemes = [
        Scheme::Generic,
        Scheme::BcSpup,
        Scheme::RwgUp,
        Scheme::PRrs,
        Scheme::MultiW,
        Scheme::Adaptive,
    ];
    let fault = LinkFault {
        at_ns: 30_000,
        node: 0,
        port: 0,
        down_ns: 5_000_000,
    };
    let idx: Vec<u64> = (0..schemes.len() as u64).collect();
    let rows = run_sweep(idx.clone(), |&i| {
        let w = VectorWorkload::new(256);
        let one_way = |sp: &ClusterSpec| pingpong(sp, &w.ty, 1, 0, 1);

        let clean = one_way(&spec(schemes[i as usize]));

        let mut apm = spec(schemes[i as usize]);
        apm.faults = FaultPlan {
            seed: 0x0C10_0000 + i,
            link_faults: vec![fault],
            ..FaultPlan::none()
        };
        let apm_r = one_way(&apm);

        let mut rec = apm.clone();
        rec.net.apm_enabled = false;
        let rec_r = one_way(&rec);

        let sum = |r: &PingPongResult, f: fn(&ibdt_mpicore::rank::RankCounters) -> u64| -> f64 {
            r.stats.counters.iter().map(f).sum::<u64>() as f64
        };
        vec![
            us(clean.one_way_ns),
            us(apm_r.one_way_ns),
            us(rec_r.one_way_ns),
            apm_r.stats.migrations as f64,
            sum(&rec_r, |k| k.qp_reestablished),
            sum(&rec_r, |k| k.resumed_chunks),
            (clean.stats.total_errors() + apm_r.stats.total_errors() + rec_r.stats.total_errors())
                as f64,
        ]
    });
    for (&i, row) in idx.iter().zip(rows) {
        t.push(i, row);
    }
    t.notes.push(
        "schemes in row order: Generic, BC-SPUP, RWG-UP, P-RRS, Multi-W, Adaptive; \
         errors must be 0 everywhere; apm_us <= reconnect_us at every row — path \
         migration mostly hides inside pack/compute overlap, while re-establishment \
         pays the reconnect delay plus the resume round-trip"
            .into(),
    );
    t
}

/// X13 — overload robustness: N→1 eager incast completion time and
/// peak unexpected-queue occupancy vs fan-in, at per-peer credit
/// budgets off / 8 / 32 / 128. Every sender fires 48 eager messages of
/// 512 B at a slow consumer (2 µs of work per receive round), so
/// arrivals outpace matching and the unexpected queue takes the burst;
/// with flow control on, credit exhaustion degrades the overflow
/// traffic to rendezvous and bounds the queue.
pub fn x13() -> Table {
    let mut t = Table::new(
        "X13: Incast overload — completion time and peak unexpected-queue occupancy",
        "fan_in",
        "mixed",
        &[
            "off_us",
            "c8_us",
            "c32_us",
            "c128_us",
            "off_peak",
            "c8_peak",
            "c32_peak",
            "c128_peak",
        ],
    );
    let fans = [4u64, 8, 16, 32, 64];
    let credits = [0u32, 8, 32, 128];
    let grid: Vec<(u64, u32)> = fans
        .iter()
        .flat_map(|&f| credits.iter().map(move |&c| (f, c)))
        .collect();
    let res = run_sweep(grid, |&(f, c)| {
        let mut sp = incast_spec(f as u32 + 1, c);
        // Deep receive rings so the credit budget, not the ring, is the
        // binding constraint on unexpected-queue growth.
        sp.mpi.eager_bufs_per_peer = 64;
        let r = incast(&sp, 48, 512, 2_000);
        assert_eq!(r.stats.total_errors(), 0, "incast fan_in={f} credits={c}");
        (us(r.completion_ns), r.peak_unexpected as f64)
    });
    for (i, &f) in fans.iter().enumerate() {
        let pts = &res[i * 4..(i + 1) * 4];
        let mut row: Vec<f64> = pts.iter().map(|p| p.0).collect();
        row.extend(pts.iter().map(|p| p.1));
        t.push(f, row);
    }
    t.notes.push(
        "tighter credit budgets bound the peak unexpected-queue occupancy (off grows \
         with fan_in; c8 stays lowest) at a modest completion-time cost from traffic \
         degraded to rendezvous"
            .into(),
    );
    t
}

/// X16 — device-resident bandwidth vs bounce-chunk size (the staged
/// pipeline of DESIGN §16, TEMPI's shape): both user buffers live in
/// device memory, so every pack/unpack streams through the bounce ring.
/// Series: double-buffered staging, single-buffer (serialized) staging,
/// and the adaptive chunk model (`staging_chunk = 0`) as a reference
/// line — flat, and tracking the best explicit chunk.
pub fn x16() -> Table {
    let mut t = Table::new(
        "X16: Device-resident vector bandwidth vs staging chunk size",
        "chunk_bytes",
        "MB/s",
        &["staged2", "staged1", "adaptive"],
    );
    // Chunks sweep past the 128 KiB segment size: beyond it one chunk
    // covers a whole segment and the pipeline degenerates to serial.
    let chunks: [u64; 7] = [
        4 << 10,
        8 << 10,
        16 << 10,
        32 << 10,
        64 << 10,
        128 << 10,
        256 << 10,
    ];
    let cols = 1024u64; // 128 rows x 1024 ints = 512 KiB per message
    let series = |bufs: usize, chunk_of: fn(u64) -> u64| {
        let xs: Vec<u64> = chunks.to_vec();
        run_sweep(xs, move |&c| {
            let mut s = spec(Scheme::BcSpup);
            s.mpi.staging_chunk = chunk_of(c);
            s.mpi.staging_bufs = bufs;
            let w = VectorWorkload::new(cols);
            let r = bandwidth_device(&s, &w.ty, 1, BW_WINDOW);
            assert!(r.stats.staging_chunks > 0, "staged pipeline unused");
            mbs(r.bytes_per_sec)
        })
    };
    let staged2 = series(2, |c| c);
    let staged1 = series(1, |c| c);
    let adaptive = series(2, |_| 0);
    for (i, &c) in chunks.iter().enumerate() {
        t.push(c, vec![staged2[i], staged1[i], adaptive[i]]);
    }
    t.notes.push(
        "expected shape: staged2 rises with chunk size (DMA launch amortization), \
         peaks below the segment size, then falls back toward staged1 as chunks \
         stop overlapping; staged1 is flatter and never above staged2; adaptive is \
         flat at (or above) the best explicit chunk"
            .into(),
    );
    t
}

/// X17 — DDT path vs manual pack+send across the datatype taxonomy
/// and the transports (after "Do MPI Derived Datatypes Actually
/// Help?", arXiv:2511.13804). Each cell is the one-way latency ratio
/// `ddt / pack` of the Adaptive scheme over the manual baseline
/// ([`pingpong_manual_ty`]): below 1.0 the datatype path wins. Columns
/// pair each class with the shm copy modes (`_d` double-copy bounce,
/// `_s` CMA single-copy) plus the IB reference for the vector class.
/// The crossover row — where the vector ratio drops below 1.0 —
/// differs between the two shm modes because single-copy's zero-copy
/// schemes pay a per-WR syscall setup that only large blocks amortize.
pub fn x17() -> Table {
    let classes = ibdt_workloads::taxonomy::ALL_CLASSES;
    let mut series: Vec<String> = Vec::new();
    for c in classes {
        series.push(format!("{}_d", c.short()));
        series.push(format!("{}_s", c.short()));
    }
    series.push("vec_ib".into());
    let series_refs: Vec<&str> = series.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "X17: DDT vs manual pack across transports (latency ratio ddt/pack)",
        "size_bytes",
        "ratio",
        &series_refs,
    );
    let sizes: [u64; 6] = [8 << 10, 32 << 10, 128 << 10, 512 << 10, 1 << 20, 2 << 20];

    // Transport code: 0 = shm double, 1 = shm single, 2 = IB.
    let shm_spec = |mode: ShmCopyMode| {
        let mut s = spec(Scheme::Adaptive);
        s.transport = TransportConfig::Shm(ShmConfig {
            copy_mode: mode,
            ..ShmConfig::default()
        });
        s
    };
    let mut grid: Vec<(DtClass, u64, u8)> = Vec::new();
    for &size in &sizes {
        for c in classes {
            grid.push((c, size, 0));
            grid.push((c, size, 1));
        }
        grid.push((DtClass::Vector, size, 2));
    }
    let res = run_sweep(grid.clone(), |&(class, size, tr)| {
        let sp = match tr {
            0 => shm_spec(ShmCopyMode::Double),
            1 => shm_spec(ShmCopyMode::Single),
            _ => spec(Scheme::Adaptive),
        };
        let ty = ibdt_workloads::taxonomy::build(class, size);
        let ddt = pingpong(&sp, &ty, 1, WARMUP, ITERS);
        let pack = pingpong_manual_ty(&sp, &ty, WARMUP, ITERS);
        assert_eq!(ddt.stats.total_errors(), 0, "{class:?}/{size}/{tr}");
        ddt.one_way_ns as f64 / pack.one_way_ns as f64
    });
    let per_row = classes.len() * 2 + 1;
    for (i, &size) in sizes.iter().enumerate() {
        let row = res[i * per_row..(i + 1) * per_row].to_vec();
        t.push(size, row);
    }

    // The headline claims. `win` is where DDT first beats manual pack
    // (ratio <= 1.0); `zero_copy` is where it wins *decisively*
    // (ratio <= 0.25), which only happens when the selector abandons
    // pack/unpack for direct per-block copies. Double-copy can never
    // reach that regime — every byte bounces regardless of scheme —
    // so the decisive crossover exists on single-copy only: the
    // crossover structure differs between the modes.
    let crossover = |col: &str, thr: f64| -> usize {
        t.rows
            .iter()
            .position(|(_, v)| v[t.series.iter().position(|s| s == col).unwrap()] <= thr)
            .unwrap_or(t.rows.len())
    };
    let none = t.rows.len();
    let (win_d, win_s) = (crossover("vec_d", 1.0), crossover("vec_s", 1.0));
    let (zc_d, zc_s) = (crossover("vec_d", 0.25), crossover("vec_s", 0.25));
    assert!(win_d < none && win_s < none, "DDT must win somewhere on shm");
    assert_ne!(
        zc_d, zc_s,
        "the decisive crossover must differ between shm copy modes \
         (double {zc_d}, single {zc_s} of {none} rows)"
    );
    assert_eq!(
        zc_d, none,
        "double copy must never reach the zero-copy regime (bounce floor)"
    );
    t.notes.push(format!(
        "vector DDT beats manual pack from {} B on both copy modes, but only \
         single-copy ever wins decisively (ratio <= 0.25 from {} B): Multi-W's \
         direct per-block CMA copies skip packing entirely once blocks amortize \
         the syscall setup, while double-copy bounces every byte regardless",
        t.rows[win_d.min(win_s)].0,
        if zc_s < none { t.rows[zc_s].0 } else { 0 },
    ));
    t.notes.push(
        "guideline (arXiv:1607.00178): DDT must not lose to pack+send — holds from \
         32 KiB up on every transport; below that the datatype path pays up to ~15% \
         protocol overhead (see EXPERIMENTS.md X17); ci.sh --shm enforces both bounds"
            .into(),
    );
    t
}

/// Every figure, in paper order (extensions last).
pub fn all_figures() -> Vec<Table> {
    let (x1a, x1b) = x1();
    vec![
        fig2(),
        fig8(),
        fig9(),
        fig11(),
        fig12(),
        fig13(),
        fig14(),
        x1a,
        x1b,
        x2(),
        x3(),
        x4(),
        x5(),
        x6(),
        x7(),
        x8(),
        x9(),
        x10(),
        x13(),
        x16(),
        x17(),
    ]
}
