#![warn(missing_docs)]
//! Figure-regeneration library.
//!
//! One function per figure of the paper (and per extension experiment),
//! each returning a [`Table`] whose shape mirrors the published plot:
//! same x-axis, same series. The `figures` binary prints them; the
//! integration tests assert the headline relationships; EXPERIMENTS.md
//! records paper-vs-measured.

pub mod figures;
pub mod table;

pub use figures::*;
pub use table::Table;
