//! Host-side hot-path microbenchmarks for the compiled transfer-plan
//! subsystem: plan compilation, plan-vs-segment pack, the repeated-send
//! pack/SGE-build loop (the workload the per-rank plan cache targets),
//! and an x1-style column sweep of the full stack with the cache on and
//! off. All numbers are **wall-clock host time** — the virtual clock is
//! proven unaffected by `tests/plan_equivalence.rs`.
//!
//! Writes `BENCH_hotpath.json` in the current directory:
//! `{ "<name>": { "ns_per_op": f64, "bytes_per_sec": f64,
//! "allocs_per_op": f64 } }` (`bytes_per_sec` is 0 for benchmarks
//! without a natural byte count).
//!
//! The binary installs a counting global allocator, so every entry
//! also reports heap allocations per operation — the steady-state
//! entries are gated at **zero** by `tools/bench_gate.py`.

use ibdt_datatype::{Datatype, Segment, TransferPlan, TypeRegistry};
use ibdt_ibsim::Payload;
use ibdt_mpicore::plan::{chunk_gather, PlanCache};
use ibdt_mpicore::pool::ScratchPool;
use ibdt_mpicore::{AppOp, Cluster, ClusterSpec, Scheme};
use ibdt_testkit::CountingAlloc;
use std::hint::black_box;
use std::time::Instant;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

struct Report {
    entries: Vec<(String, f64, f64, f64)>,
}

impl Report {
    fn new() -> Self {
        Self {
            entries: Vec::new(),
        }
    }

    /// Times `f` adaptively and records + prints the result.
    ///
    /// Calibrates an iteration count to a ~15 ms pass, then takes the
    /// **best of several passes**: on a shared/virtualized host the
    /// minimum is the only robust location estimate (interference only
    /// ever adds time), and the committed JSON doubles as a CI
    /// regression gate, so a noise spike must not look like a
    /// regression. Allocations are counted over the same passes and
    /// reported per op, also as the minimum — pool warm-up in an early
    /// pass must not mask a steady state that allocates nothing.
    fn bench(&mut self, name: &str, bytes: Option<u64>, mut f: impl FnMut()) -> f64 {
        for _ in 0..3 {
            f();
        }
        let mut iters = 1u64;
        let per_pass = loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            let dt = t0.elapsed();
            if dt.as_millis() >= 15 || iters >= 1 << 22 {
                break dt.as_nanos() as f64 / iters as f64;
            }
            iters *= 4;
        };
        let mut per = per_pass;
        let mut allocs = f64::INFINITY;
        for _ in 0..4 {
            let a0 = CountingAlloc::allocations();
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            per = per.min(t0.elapsed().as_nanos() as f64 / iters as f64);
            let da = CountingAlloc::allocations() - a0;
            allocs = allocs.min(da as f64 / iters as f64);
        }
        let bps = bytes.map_or(0.0, |b| b as f64 / per * 1e9);
        match bytes {
            Some(_) => println!(
                "{name:<52} {per:>12.0} ns/op  {:>9.1} MB/s  {allocs:>8.2} allocs/op",
                bps / 1e6
            ),
            None => println!("{name:<52} {per:>12.0} ns/op  {allocs:>30.2} allocs/op"),
        }
        self.entries.push((name.to_string(), per, bps, allocs));
        per
    }

    fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        for (i, (name, per, bps, allocs)) in self.entries.iter().enumerate() {
            s.push_str(&format!(
                "  \"{name}\": {{ \"ns_per_op\": {per:.1}, \"bytes_per_sec\": {bps:.1}, \"allocs_per_op\": {allocs:.3} }}"
            ));
            s.push_str(if i + 1 == self.entries.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        s.push_str("}\n");
        s
    }
}

/// The paper's workload shape: `MPI_Type_vector(128, cols, 4096, MPI_INT)`.
fn vector_ty(cols: u64) -> Datatype {
    Datatype::vector(128, cols, 4096, &Datatype::int()).unwrap()
}

/// 64-byte-aligned buffer. Large `malloc` blocks land at `base ≡ 16
/// (mod 64)` (mmap chunk header), which would let allocator luck
/// decide whether the kernels' wide stores split cache lines — pin the
/// alignment so runs are comparable.
struct AlignedBuf {
    raw: Vec<u8>,
    off: usize,
    len: usize,
}

impl AlignedBuf {
    fn new(len: usize, fill: u8) -> Self {
        let raw = vec![fill; len + 64];
        let off = raw.as_ptr().align_offset(64);
        AlignedBuf { raw, off, len }
    }
}

impl std::ops::Deref for AlignedBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.raw[self.off..self.off + self.len]
    }
}

impl std::ops::DerefMut for AlignedBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        let (off, len) = (self.off, self.len);
        &mut self.raw[off..off + len]
    }
}

fn bench_plan_compile(r: &mut Report) {
    for cols in [4u64, 64, 1024] {
        let ty = vector_ty(cols);
        r.bench(&format!("plan_compile/vector_cols/{cols}"), None, || {
            black_box(TransferPlan::compile(black_box(&ty), 1));
        });
    }
}

fn bench_pack(r: &mut Report) {
    for cols in [4u64, 64, 1024] {
        let ty = vector_ty(cols);
        let plan = TransferPlan::compile(&ty, 1);
        let seg = Segment::new(&ty, 1);
        let n = plan.total_bytes();
        let buf = AlignedBuf::new(ty.true_ub() as usize + 64, 0xA5);
        let mut out = AlignedBuf::new(n as usize, 0);
        r.bench(&format!("pack/segment/vector_cols/{cols}"), Some(n), || {
            seg.pack(0, n, black_box(&buf[..]), 0, black_box(&mut out[..]))
                .unwrap();
        });
        r.bench(&format!("pack/plan/vector_cols/{cols}"), Some(n), || {
            plan.pack(0, n, black_box(&buf[..]), 0, black_box(&mut out[..]))
                .unwrap();
        });
        let stream = AlignedBuf::new(n as usize, 0x5A);
        let mut user = AlignedBuf::new(ty.true_ub() as usize + 64, 0);
        r.bench(&format!("unpack/plan/vector_cols/{cols}"), Some(n), || {
            plan.unpack(0, n, black_box(&stream[..]), black_box(&mut user[..]), 0)
                .unwrap();
        });
    }
}

/// Copy-kernel microbenches: one shape per kernel class, pack and
/// unpack, against the naive segment walk on the same shape. The label
/// carries the kernel the plan compiler actually selected, so a
/// classification regression shows up as a renamed metric.
fn bench_kernels(r: &mut Report) {
    let shapes: Vec<(&str, Datatype, u64)> = vec![
        (
            "contig",
            Datatype::contiguous(4096, &Datatype::byte()).unwrap(),
            1,
        ),
        ("const_stride", vector_ty(64), 1),
        // Pad the vector's extent so repetitions don't butt up against
        // the last row (adjacent seams would merge into unequal blocks
        // and demote the shape to Generic).
        (
            "two_level",
            Datatype::resized(
                &vector_ty(64),
                0,
                Datatype::vector(128, 64, 4096, &Datatype::int())
                    .unwrap()
                    .extent()
                    + 4096,
            )
            .unwrap(),
            4,
        ),
        (
            "generic",
            Datatype::hindexed(
                &[(48, 0), (16, 640), (96, 1280), (32, 4096), (48, 6144)],
                &Datatype::byte(),
            )
            .unwrap(),
            8,
        ),
    ];
    for (shape, ty, count) in &shapes {
        let plan = TransferPlan::compile(ty, *count);
        let seg = Segment::new(ty, *count);
        let n = plan.total_bytes();
        let kernel = format!("{:?}", plan.kernel());
        let kernel = kernel.split([' ', '{']).next().unwrap_or("?");
        let span = (ty.true_ub() as u64 + ty.extent().unsigned_abs() * count) as usize + 64;
        let buf = AlignedBuf::new(span, 0xA5);
        let mut out = AlignedBuf::new(n as usize, 0);
        r.bench(
            &format!("kernel/pack/{shape}/{kernel}/bytes/{n}"),
            Some(n),
            || {
                plan.pack(0, n, black_box(&buf[..]), 0, black_box(&mut out[..]))
                    .unwrap();
            },
        );
        let stream = AlignedBuf::new(n as usize, 0x5A);
        let mut user = AlignedBuf::new(span, 0);
        r.bench(
            &format!("kernel/unpack/{shape}/{kernel}/bytes/{n}"),
            Some(n),
            || {
                plan.unpack(0, n, black_box(&stream[..]), black_box(&mut user[..]), 0)
                    .unwrap();
            },
        );
        r.bench(
            &format!("kernel/pack_naive/{shape}/bytes/{n}"),
            Some(n),
            || {
                seg.pack(0, n, black_box(&buf[..]), 0, black_box(&mut out[..]))
                    .unwrap();
            },
        );
    }
}

/// Event-queue microbenches: the timing wheel against the retired
/// binary heap on an identical deterministic schedule/pop churn (a mix
/// of near-future inserts and batch pops, the simulator's access
/// pattern).
fn bench_queue(r: &mut Report) {
    use ibdt_simcore::{EventQueue, HeapQueue};
    const OPS: usize = 4096;
    // xorshift-driven mix: 3 schedules per 2 pops, horizon 1–64 µs.
    // `clock` persists across ops so virtual time stays monotone on a
    // long-lived queue, exactly as inside a simulation.
    fn churn(clock: &mut u64, mut next: impl FnMut(&mut u64, u64) -> Option<(u64, u32)>) {
        let mut s = 0x9E37_79B9u64;
        let mut n = 0usize;
        while n < OPS {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            if let Some((t, _)) = next(clock, s) {
                *clock = t;
            }
            n += 1;
        }
    }
    // Queues are constructed once and drained at the end of each op:
    // the measured loop is the *steady state* of a long simulation,
    // where slot/arena storage is warm. The steady-state gate requires
    // the wheel at exactly 0 allocs/op here (its slot vectors recycle
    // through the spare pool).
    let mut wq: EventQueue<u32> = EventQueue::new();
    let mut wclock = 0u64;
    r.bench(&format!("queue/wheel/churn/ops/{OPS}"), None, || {
        let mut pending = 0u64;
        churn(&mut wclock, |clock, s| {
            if s % 5 < 3 || pending == 0 {
                wq.schedule(*clock + 1 + (s >> 8) % 64_000, s as u32);
                pending += 1;
                None
            } else {
                pending -= 1;
                black_box(wq.pop())
            }
        });
        while let Some((t, _)) = wq.pop() {
            wclock = t;
        }
        black_box(wq.len());
    });
    let mut hq: HeapQueue<u32> = HeapQueue::new();
    let mut hclock = 0u64;
    r.bench(&format!("queue/heap/churn/ops/{OPS}"), None, || {
        let mut pending = 0u64;
        churn(&mut hclock, |clock, s| {
            if s % 5 < 3 || pending == 0 {
                hq.schedule(*clock + 1 + (s >> 8) % 64_000, s as u32);
                pending += 1;
                None
            } else {
                pending -= 1;
                black_box(hq.pop())
            }
        });
        while let Some((t, _)) = hq.pop() {
            hclock = t;
        }
        black_box(hq.len());
    });
}

/// The tentpole comparison: per-send fixed host work, repeated across
/// many sends of the SAME (datatype, count) — the steady state of every
/// figure workload. Two components, mirroring the two hot paths in
/// `progress.rs`:
///
/// * `pack_eager` — the eager path: pack one 1 KiB vector message.
///   Old: re-instantiate the segment walker + allocate fresh staging.
///   New: plan-cache hit + scratch-pool staging.
/// * `sge_build` — the zero-copy descriptor path (RWG-UP / Multi-W):
///   build the absolute SGE chunk list for the whole message.
///   Old: re-materialize `flat().repeat(count)` + fresh list.
///   New: iterate the plan's cached merged blocks into a scratch list.
///
/// The bulk byte copy of large packed sends is identical on both paths
/// (see `pack/segment` vs `pack/plan` above); what the cache removes is
/// this per-send fixed overhead, so the speedup is measured on it.
fn bench_repeated_send(r: &mut Report) -> (f64, f64) {
    let max_sge = 16usize;
    let base: u64 = 0x10_0000;

    // Eager-style pack: vector(128, 2, 4096) = 128 blocks, 1 KiB total.
    let ety = vector_ty(2);
    let n = ety.size();
    let ebuf = vec![0x3Cu8; ety.true_ub() as usize + 64];
    let old_pack = r.bench(
        &format!("repeated_send/pack_eager/old/bytes/{n}"),
        Some(n),
        || {
            let seg = Segment::new(black_box(&ety), 1);
            let mut staging = vec![0u8; n as usize];
            seg.pack(0, n, &ebuf, 0, &mut staging).unwrap();
            // Copy-cost accounting walked every block again.
            black_box(seg.block_count_in(0, n).unwrap());
            black_box(staging);
        },
    );
    let mut registry = TypeRegistry::new();
    let mut cache = PlanCache::new(true, 64);
    let mut scratch = ScratchPool::new();
    let new_pack = r.bench(
        &format!("repeated_send/pack_eager/new/bytes/{n}"),
        Some(n),
        || {
            let plan = cache.lookup(&mut registry, black_box(&ety), 1);
            let mut staging = scratch.take_bytes(n as usize);
            plan.pack(0, n, &ebuf, 0, &mut staging).unwrap();
            // O(log blocks) via the prefix-sum index.
            black_box(plan.block_count_in(0, n).unwrap());
            scratch.put_bytes(staging);
        },
    );

    // SGE/descriptor build: vector(128, 64, 4096) × 4 = 512 blocks.
    let sty = vector_ty(64);
    let count = 4u64;
    let old_sge = r.bench("repeated_send/sge_build/old/blocks/512", None, || {
        // RWG-UP posting instantiated a fresh walker per message, and
        // isend re-derived the block statistics (a sort for the
        // median) on every send before building descriptors.
        black_box(Segment::new(black_box(&sty), count));
        black_box(black_box(&sty).flat().stats(count));
        let blocks: Vec<(u64, u64)> = black_box(&sty)
            .flat()
            .repeat(count)
            .into_iter()
            .map(|(o, l)| ((base as i64 + o) as u64, l))
            .collect();
        black_box(chunk_gather(&blocks, max_sge));
    });
    let splan = cache.lookup(&mut registry, &sty, count);
    let new_sge = r.bench("repeated_send/sge_build/new/blocks/512", None, || {
        black_box(black_box(&splan).stats());
        let mut blocks = scratch.take_blocks();
        blocks.extend(
            black_box(&splan)
                .blocks()
                .iter()
                .map(|&(o, l)| ((base as i64 + o) as u64, l)),
        );
        let chunks = chunk_gather(&blocks, max_sge);
        scratch.put_blocks(blocks);
        black_box(chunks);
    });

    (old_pack + old_sge, new_pack + new_sge)
}

/// The allocation-free steady state, end to end on the host side: N
/// repeated "persistent" eager sends of the same (datatype, count) —
/// plan-cache hit, scratch-pool staging, pack, and a pooled payload
/// slab (buffer + `Arc` control block both reused). After the warm-up
/// passes this loop performs **zero** heap allocations per send;
/// `tools/bench_gate.py` fails CI if `allocs_per_op` ever leaves 0.
fn bench_persistent(r: &mut Report) {
    let ty = vector_ty(2);
    let n = ty.size();
    let buf = vec![0x3Cu8; ty.true_ub() as usize + 64];
    let mut registry = TypeRegistry::new();
    let mut cache = PlanCache::new(true, 64);
    let mut scratch = ScratchPool::new();
    r.bench(
        &format!("repeated_send/persistent_eager/bytes/{n}"),
        Some(n),
        || {
            let plan = cache.lookup(&mut registry, black_box(&ty), 1);
            let mut staging = scratch.take_bytes(n as usize);
            plan.pack(0, n, &buf, 0, &mut staging).unwrap();
            let payload = Payload::build(n as usize, |v| v.extend_from_slice(&staging));
            black_box(payload.as_slice());
            scratch.put_bytes(staging);
            drop(payload);
        },
    );
}

/// Canonicalization benches. Asserts — in the binary, so the ci.sh
/// bench smoke enforces it — that three spellings of one layout
/// compile exactly one plan, then measures the steady-state respelled
/// lookup (a canonical-hit: `OnceLock` read + LRU hit, zero allocs)
/// and the full normalize-an-unseen-spelling path.
fn bench_canon(r: &mut Report) -> (u64, u64) {
    let int = Datatype::int();
    // vector(128, 16, 4096): 128 blocks of 16 ints every 16384 bytes —
    // under three spellings (hvector strides in bytes, hindexed
    // displacements in bytes, block lengths in elements throughout).
    let v = vector_ty(16);
    let hv = Datatype::hvector(128, 16, 16384, &int).unwrap();
    let entries: Vec<(u64, i64)> = (0..128).map(|i| (16, i * 16384)).collect();
    let hx = Datatype::hindexed(&entries, &int).unwrap();

    let mut registry = TypeRegistry::new();
    let mut cache = PlanCache::new(true, 64).with_canonicalization(true);
    cache.lookup(&mut registry, &v, 1);
    cache.lookup(&mut registry, &hv, 1);
    cache.lookup(&mut registry, &hx, 1);
    let (_, misses, _) = cache.stats();
    let (canon_hits, canonicalized) = cache.canon_stats();
    assert_eq!(
        misses, 1,
        "three spellings of one layout must compile exactly one plan"
    );
    assert!(
        canon_hits >= 2,
        "respelled lookups must hit the canonical plan"
    );

    r.bench("canon/respelled_lookup/vector_cols/16", None, || {
        black_box(cache.lookup(&mut registry, black_box(&hx), 1));
    });
    r.bench("canon/normalize_fresh/blocks/128", None, || {
        // An unseen spelling every op: tree build + flatten + normal
        // form + intern-table probe (hits the shared canonical node).
        let t = Datatype::hindexed(black_box(&entries), &int).unwrap();
        black_box(t.canonical());
    });
    (canon_hits, canonicalized)
}

/// Device-tier benches: wall-clock host cost of a full simulated
/// bandwidth run with device-resident buffers — the staged bounce
/// pipeline (explicit 8 KiB chunks vs the adaptive chunk model) on top
/// of BC-SPUP. Returns the staging-chunk count for the summary line.
fn bench_device(r: &mut Report) -> u64 {
    use ibdt_workloads::bandwidth_device;
    let ty = vector_ty(256);
    let mut chunks = 0u64;
    for (label, chunk) in [("chunk/8192", 8192u64), ("chunk/auto", 0)] {
        r.bench(&format!("device/bandwidth_staged/{label}"), None, || {
            let mut spec = ClusterSpec::default();
            spec.mpi.scheme = Scheme::BcSpup;
            spec.mpi.staging_chunk = chunk;
            let res = bandwidth_device(&spec, &ty, 1, 4);
            assert!(res.stats.staging_chunks > 0, "staged pipeline unused");
            chunks = res.stats.staging_chunks;
            black_box(res.bytes_per_sec);
        });
    }
    chunks
}

/// x1-style sweep: wall-clock host time of a full simulated ping-pong
/// per column count, plan cache on vs off. Virtual results are
/// identical; only the host pays differently.
fn bench_sweep(r: &mut Report) {
    for cols in [4u64, 64, 512] {
        for cache in [true, false] {
            let label = format!(
                "sweep_x1/pingpong_cols/{cols}/cache_{}",
                if cache { "on" } else { "off" }
            );
            let ty = vector_ty(cols);
            r.bench(&label, None, || {
                let mut spec = ClusterSpec::default();
                spec.mpi.scheme = Scheme::BcSpup;
                spec.mpi.plan_cache = cache;
                let mut cluster = Cluster::new(spec);
                let span = ty.true_ub() as u64 + 64;
                let sbuf = cluster.alloc(0, span, 4096);
                let rbuf = cluster.alloc(1, span, 4096);
                let mut p0 = Vec::new();
                let mut p1 = Vec::new();
                for tag in 0..4 {
                    p0.push(AppOp::Isend {
                        peer: 1,
                        buf: sbuf,
                        count: 1,
                        ty: ty.clone(),
                        tag,
                    });
                    p0.push(AppOp::WaitAll);
                    p1.push(AppOp::Irecv {
                        peer: 0,
                        buf: rbuf,
                        count: 1,
                        ty: ty.clone(),
                        tag,
                    });
                    p1.push(AppOp::WaitAll);
                }
                black_box(cluster.run(vec![p0, p1]));
                cluster.recycle();
            });
        }
    }
}

/// Shared-memory transport sweep: wall-clock host cost of a full
/// simulated ping-pong over the shm channel, one entry per copy mode.
/// The double-copy run bounces every byte through the shared segment;
/// the single-copy run issues per-block CMA copies — both exercise the
/// transport's chunking/occupancy machinery end to end. Clusters
/// recycle across iterations like the x1 sweep, so steady-state
/// allocations gate at the same level.
fn bench_shm(r: &mut Report) {
    use ibdt_mpicore::{ShmConfig, ShmCopyMode, TransportConfig};
    for (label, mode) in [
        ("double", ShmCopyMode::Double),
        ("single", ShmCopyMode::Single),
    ] {
        let ty = vector_ty(64);
        r.bench(&format!("shm/pingpong_cols/64/{label}"), None, || {
            let mut spec = ClusterSpec::default();
            spec.mpi.scheme = Scheme::Adaptive;
            spec.transport = TransportConfig::Shm(ShmConfig {
                copy_mode: mode,
                ..ShmConfig::default()
            });
            let mut cluster = Cluster::new(spec);
            let span = ty.true_ub() as u64 + 64;
            let sbuf = cluster.alloc(0, span, 4096);
            let rbuf = cluster.alloc(1, span, 4096);
            let mut p0 = Vec::new();
            let mut p1 = Vec::new();
            for tag in 0..4 {
                p0.push(AppOp::Isend {
                    peer: 1,
                    buf: sbuf,
                    count: 1,
                    ty: ty.clone(),
                    tag,
                });
                p0.push(AppOp::WaitAll);
                p1.push(AppOp::Irecv {
                    peer: 0,
                    buf: rbuf,
                    count: 1,
                    ty: ty.clone(),
                    tag,
                });
                p1.push(AppOp::WaitAll);
            }
            black_box(cluster.run(vec![p0, p1]));
            cluster.recycle();
        });
    }
}

/// Incast overload: wall-clock host time of a full 8→1 eager incast
/// simulation with the bounded CQ on, flow control off vs credits=32.
/// This is the overload machinery's host-side cost — credit tables,
/// piggyback encoding, CqAck events — gated in CI like the other
/// simulation sweeps.
fn bench_incast(r: &mut Report) {
    use ibdt_workloads::{incast, incast_spec};
    for credits in [0u32, 32] {
        let label = format!("incast/fanin/8/credits/{credits}");
        r.bench(&label, None, || {
            let mut sp = incast_spec(9, credits);
            sp.net.cq_depth = 256;
            black_box(incast(&sp, 12, 512, 2_000));
        });
    }
}

/// Sharded scale driver (§14): wall-clock host time of a vector
/// Alltoall at a mid-size rank count, one shard vs eight. Result
/// bit-identity across shard and thread counts is asserted by the
/// workloads tests; the gate here watches host cost and allocations.
fn bench_scale(r: &mut Report) {
    use ibdt_workloads::{run_scale, ScaleConfig};
    for shards in [1usize, 8] {
        let label = format!("scale/alltoall/256/shards/{shards}");
        r.bench(&label, None, || {
            let cfg = ScaleConfig {
                ranks: 256,
                shards,
                ..ScaleConfig::default()
            };
            black_box(run_scale(&cfg));
        });
    }
}

fn main() {
    let mut r = Report::new();
    bench_plan_compile(&mut r);
    bench_pack(&mut r);
    bench_kernels(&mut r);
    bench_queue(&mut r);
    let (old, new) = bench_repeated_send(&mut r);
    bench_persistent(&mut r);
    let (canon_hits, canonicalized) = bench_canon(&mut r);
    let staging_chunks = bench_device(&mut r);
    bench_sweep(&mut r);
    bench_shm(&mut r);
    bench_incast(&mut r);
    bench_scale(&mut r);
    let speedup = old / new;
    println!("\nrepeated_send speedup (old/new): {speedup:.2}x");
    println!(
        "canonicalization: {canonicalized} respelled types, {canon_hits} canonical plan hits \
         (3 spellings -> 1 compile asserted)"
    );
    println!("device staging: {staging_chunks} bounce chunks per bandwidth run");
    r.entries
        .push(("repeated_send/speedup".into(), speedup, 0.0, 0.0));
    std::fs::write("BENCH_hotpath.json", r.to_json()).expect("write BENCH_hotpath.json");
    println!("wrote BENCH_hotpath.json ({} entries)", r.entries.len());
}
