//! X14: sharded-scale driver measurements (DESIGN.md §14).
//!
//! Runs the lightweight scale model's vector Alltoall at growing rank
//! counts and reports wall-clock time and resident model state, showing
//! memory scales with active pairs (window-bounded) rather than n².
//! Writes `results/x14.csv`.
//!
//! `--smoke` runs only the 1024-rank point and enforces the CI budget
//! (wall time and per-rank state), exiting nonzero on a miss — the
//! `ci.sh --scale` gate.

use ibdt_workloads::{run_scale, ScaleConfig, ScaleReport};
use std::time::Instant;

/// CI budget for the 1024-rank smoke: wall-clock seconds.
const SMOKE_WALL_BUDGET_S: f64 = 10.0;
/// CI budget for the 1024-rank smoke: model state per rank, bytes.
/// The per-rank footprint is O(window + shard overhead), not O(n);
/// 4 KiB/rank is an order of magnitude above the measured value, so a
/// regression back toward dense n² tables trips the gate loudly.
const SMOKE_STATE_PER_RANK_B: usize = 4096;

fn run_point(ranks: u32, shards: usize, threads: usize) -> (ScaleReport, f64) {
    let cfg = ScaleConfig {
        ranks,
        shards,
        threads,
        ..ScaleConfig::default()
    };
    let t0 = Instant::now();
    let rep = run_scale(&cfg);
    (rep, t0.elapsed().as_secs_f64())
}

fn smoke() -> i32 {
    let (rep, wall) = run_point(1024, 8, 8);
    let per_rank = rep.state_bytes / rep.ranks as usize;
    println!(
        "scale smoke: 1024-rank vector Alltoall: {:.2}s wall, {} msgs, \
         {} B state ({} B/rank), fingerprint {:#018x}",
        wall, rep.msgs, rep.state_bytes, per_rank, rep.fingerprint
    );
    let mut ok = true;
    if wall > SMOKE_WALL_BUDGET_S {
        println!("FAIL: wall {wall:.2}s exceeds budget {SMOKE_WALL_BUDGET_S}s");
        ok = false;
    }
    if per_rank > SMOKE_STATE_PER_RANK_B {
        println!("FAIL: state {per_rank} B/rank exceeds budget {SMOKE_STATE_PER_RANK_B} B/rank");
        ok = false;
    }
    // The sharded run must agree with the sequential reference —
    // lookahead synchronization is only correct if it is bit-identical.
    let (reference, _) = run_point(1024, 1, 1);
    if reference.fingerprint != rep.fingerprint {
        println!(
            "FAIL: sharded fingerprint {:#018x} != sequential {:#018x}",
            rep.fingerprint, reference.fingerprint
        );
        ok = false;
    }
    if ok {
        println!("scale smoke OK");
        0
    } else {
        1
    }
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        std::process::exit(smoke());
    }
    let mut csv = String::from("ranks,shards,threads,msgs,finish_ns,wall_s,state_bytes\n");
    println!(
        "{:>6} {:>7} {:>8} {:>9} {:>14} {:>9} {:>12}",
        "ranks", "shards", "threads", "msgs", "finish_ns", "wall_s", "state_bytes"
    );
    for ranks in [64u32, 256, 1024, 4096] {
        for (shards, threads) in [(1usize, 1usize), (8, 8)] {
            let (rep, wall) = run_point(ranks, shards, threads);
            println!(
                "{:>6} {:>7} {:>8} {:>9} {:>14} {:>9.3} {:>12}",
                ranks, shards, threads, rep.msgs, rep.finish_ns, wall, rep.state_bytes
            );
            csv.push_str(&format!(
                "{},{},{},{},{},{:.4},{}\n",
                ranks, shards, threads, rep.msgs, rep.finish_ns, wall, rep.state_bytes
            ));
        }
    }
    std::fs::create_dir_all("results").expect("mkdir results");
    std::fs::write("results/x14.csv", csv).expect("write results/x14.csv");
    println!("\nwrote results/x14.csv");
}
