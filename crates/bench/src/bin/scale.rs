//! X14: sharded-scale driver measurements (DESIGN.md §14).
//!
//! Runs the lightweight scale model's vector Alltoall at growing rank
//! counts and reports wall-clock time and resident model state, showing
//! memory scales with active pairs (window-bounded) rather than n².
//! Writes `results/x14.csv`.
//!
//! `--smoke` runs only the 1024-rank point and enforces the CI budget
//! (wall time and per-rank state), exiting nonzero on a miss — the
//! `ci.sh --scale` gate.
//!
//! `--chaos-smoke` is the chaos acceptance gate (`ci.sh
//! --chaos-scale`): a seeded crash-stop plan on the 4096-rank run
//! must fingerprint bit-identically across 1, 2, and 8 shards.
//! `IBDT_CHAOS_SEED` overrides the plan seed for replays.
//!
//! `--x15` sweeps the scheduled crash count on the 4096-rank driver
//! (the survivable-fault-rate experiment, DESIGN.md §15) and writes
//! `results/x15.csv`.

use ibdt_workloads::{run_scale, ScaleConfig, ScaleFaultPlan, ScaleReport};
use std::time::Instant;

/// CI budget for the 1024-rank smoke: wall-clock seconds.
const SMOKE_WALL_BUDGET_S: f64 = 10.0;
/// CI budget for the 1024-rank smoke: model state per rank, bytes.
/// The per-rank footprint is O(window + shard overhead), not O(n);
/// 4 KiB/rank is an order of magnitude above the measured value, so a
/// regression back toward dense n² tables trips the gate loudly.
const SMOKE_STATE_PER_RANK_B: usize = 4096;

fn run_point(ranks: u32, shards: usize, threads: usize) -> (ScaleReport, f64) {
    let cfg = ScaleConfig {
        ranks,
        shards,
        threads,
        ..ScaleConfig::default()
    };
    let t0 = Instant::now();
    let rep = run_scale(&cfg);
    (rep, t0.elapsed().as_secs_f64())
}

fn smoke() -> i32 {
    let (rep, wall) = run_point(1024, 8, 8);
    let per_rank = rep.state_bytes / rep.ranks as usize;
    println!(
        "scale smoke: 1024-rank vector Alltoall: {:.2}s wall, {} msgs, \
         {} B state ({} B/rank), fingerprint {:#018x}",
        wall, rep.msgs, rep.state_bytes, per_rank, rep.fingerprint
    );
    let mut ok = true;
    if wall > SMOKE_WALL_BUDGET_S {
        println!("FAIL: wall {wall:.2}s exceeds budget {SMOKE_WALL_BUDGET_S}s");
        ok = false;
    }
    if per_rank > SMOKE_STATE_PER_RANK_B {
        println!("FAIL: state {per_rank} B/rank exceeds budget {SMOKE_STATE_PER_RANK_B} B/rank");
        ok = false;
    }
    // The sharded run must agree with the sequential reference —
    // lookahead synchronization is only correct if it is bit-identical.
    let (reference, _) = run_point(1024, 1, 1);
    if reference.fingerprint != rep.fingerprint {
        println!(
            "FAIL: sharded fingerprint {:#018x} != sequential {:#018x}",
            rep.fingerprint, reference.fingerprint
        );
        ok = false;
    }
    if ok {
        println!("scale smoke OK");
        0
    } else {
        1
    }
}

/// Seed override hook shared with the test suites (decimal or 0x hex).
fn chaos_seed(default: u64) -> u64 {
    match std::env::var("IBDT_CHAOS_SEED") {
        Err(_) => default,
        Ok(s) => {
            let s = s.trim();
            let parsed = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                u64::from_str_radix(hex, 16)
            } else {
                s.parse()
            };
            parsed.unwrap_or_else(|e| panic!("IBDT_CHAOS_SEED={s:?} is not a u64: {e}"))
        }
    }
}

fn chaos_point(
    ranks: u32,
    shards: usize,
    threads: usize,
    faults: ScaleFaultPlan,
) -> (ScaleReport, f64) {
    let cfg = ScaleConfig {
        ranks,
        shards,
        threads,
        faults,
        ..ScaleConfig::default()
    };
    let t0 = Instant::now();
    let rep = run_scale(&cfg);
    (rep, t0.elapsed().as_secs_f64())
}

/// The acceptance criterion for chaos at scale: a seeded crash-stop
/// run on the 4096-rank driver is bit-identical across 1, 2, and 8
/// shards — fingerprint, finish time, and every failure observation.
fn chaos_smoke() -> i32 {
    let seed = chaos_seed(0xC4A0);
    let plan = ScaleFaultPlan::seeded(seed, 4096, 16, 32, 2_000_000);
    let n_events = plan.events.len();
    let (reference, wall) = chaos_point(4096, 1, 1, plan.clone());
    println!(
        "chaos smoke: 4096-rank alltoall, seed {:#x}, {} fault events: \
         {:.2}s wall, {} msgs delivered, {} lost, {} crashed, fingerprint {:#018x}",
        seed, n_events, wall, reference.msgs, reference.lost, reference.crashed,
        reference.fingerprint
    );
    let mut ok = true;
    if reference.crashed != 16 {
        println!("FAIL: expected 16 crashes, observed {}", reference.crashed);
        ok = false;
    }
    if reference.lost == 0 {
        println!("FAIL: crash-stop mid-alltoall must lose in-flight messages");
        ok = false;
    }
    for shards in [2usize, 8] {
        let (r, w) = chaos_point(4096, shards, 8, plan.clone());
        println!(
            "chaos smoke: {shards} shards: {:.2}s wall, fingerprint {:#018x}",
            w, r.fingerprint
        );
        if (r.fingerprint, r.finish_ns, r.msgs, r.crashed, r.lost)
            != (
                reference.fingerprint,
                reference.finish_ns,
                reference.msgs,
                reference.crashed,
                reference.lost,
            )
        {
            println!(
                "FAIL: {shards}-shard chaotic run diverged from the sequential \
                 reference (fingerprint {:#018x} != {:#018x})",
                r.fingerprint, reference.fingerprint
            );
            ok = false;
        }
    }
    if ok {
        println!("chaos smoke OK: faulty run bit-identical across 1/2/8 shards");
        0
    } else {
        1
    }
}

/// X15: survivable fault-rate sweep. Crash a growing fraction of the
/// 4096 ranks and measure what the fabric still delivers: messages
/// delivered vs lost vs stranded, and the finish time of the
/// surviving traffic.
fn x15() {
    let seed = chaos_seed(0xC4A0);
    let ranks = 4096u32;
    let full = ranks as u64 * (ranks as u64 - 1);
    let mut csv =
        String::from("ranks,crashes,seed,msgs,lost,stranded,delivered_frac,finish_ns,wall_s\n");
    println!(
        "{:>6} {:>8} {:>10} {:>9} {:>8} {:>9} {:>10} {:>14} {:>8}",
        "ranks", "crashes", "seed", "msgs", "lost", "stranded", "delivered", "finish_ns", "wall_s"
    );
    for crashes in [0u32, 4, 16, 64, 256] {
        let plan = if crashes == 0 {
            ScaleFaultPlan::none()
        } else {
            ScaleFaultPlan::seeded(seed, ranks, crashes, 0, 2_000_000)
        };
        let (rep, wall) = chaos_point(ranks, 8, 8, plan);
        // Messages neither delivered nor lost on the wire: never sent,
        // because the sender died or its window stuck on a dead peer.
        let stranded = full - rep.msgs - rep.lost;
        let frac = rep.msgs as f64 / full as f64;
        println!(
            "{:>6} {:>8} {:>10} {:>9} {:>8} {:>9} {:>10.4} {:>14} {:>8.2}",
            ranks, crashes, seed, rep.msgs, rep.lost, stranded, frac, rep.finish_ns, wall
        );
        csv.push_str(&format!(
            "{},{},{:#x},{},{},{},{:.6},{},{:.4}\n",
            ranks, crashes, seed, rep.msgs, rep.lost, stranded, frac, rep.finish_ns, wall
        ));
    }
    std::fs::create_dir_all("results").expect("mkdir results");
    std::fs::write("results/x15.csv", csv).expect("write results/x15.csv");
    println!("\nwrote results/x15.csv");
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        std::process::exit(smoke());
    }
    if std::env::args().any(|a| a == "--chaos-smoke") {
        std::process::exit(chaos_smoke());
    }
    if std::env::args().any(|a| a == "--x15") {
        x15();
        return;
    }
    let mut csv = String::from("ranks,shards,threads,msgs,finish_ns,wall_s,state_bytes\n");
    println!(
        "{:>6} {:>7} {:>8} {:>9} {:>14} {:>9} {:>12}",
        "ranks", "shards", "threads", "msgs", "finish_ns", "wall_s", "state_bytes"
    );
    for ranks in [64u32, 256, 1024, 4096] {
        for (shards, threads) in [(1usize, 1usize), (8, 8)] {
            let (rep, wall) = run_point(ranks, shards, threads);
            println!(
                "{:>6} {:>7} {:>8} {:>9} {:>14} {:>9.3} {:>12}",
                ranks, shards, threads, rep.msgs, rep.finish_ns, wall, rep.state_bytes
            );
            csv.push_str(&format!(
                "{},{},{},{},{},{:.4},{}\n",
                ranks, shards, threads, rep.msgs, rep.finish_ns, wall, rep.state_bytes
            ));
        }
    }
    std::fs::create_dir_all("results").expect("mkdir results");
    std::fs::write("results/x14.csv", csv).expect("write results/x14.csv");
    println!("\nwrote results/x14.csv");
}
