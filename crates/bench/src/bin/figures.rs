//! Regenerates the paper's figures as text tables (and optional CSV).
//!
//! ```text
//! figures [fig2|fig8|fig9|fig11|fig12|fig13|fig14|x1..x10|x13|x16|x17|all]
//!         [--csv DIR]
//! ```
//!
//! With `--csv DIR`, each table is also written as `DIR/<name>.csv`.

use ibdt_bench::Table;
use ibdt_bench::{
    all_figures, fig11, fig12, fig13, fig14, fig2, fig8, fig9, x1, x10, x13, x16, x17, x2, x3, x4,
    x5, x6, x7, x8, x9,
};
use std::io::Write as _;

fn emit(tables: Vec<(String, Table)>, csv_dir: Option<&str>) {
    for (name, t) in tables {
        println!("{}", t.render());
        if let Some(dir) = csv_dir {
            std::fs::create_dir_all(dir).expect("create csv dir");
            let path = format!("{dir}/{name}.csv");
            let mut f = std::fs::File::create(&path).expect("create csv file");
            f.write_all(t.to_csv().as_bytes()).expect("write csv");
            eprintln!("wrote {path}");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut which: Vec<String> = Vec::new();
    let mut csv_dir: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--csv" => {
                i += 1;
                csv_dir = Some(args.get(i).expect("--csv needs a directory").clone());
            }
            other => which.push(other.to_owned()),
        }
        i += 1;
    }
    if which.is_empty() {
        which.push("all".to_owned());
    }

    let mut tables: Vec<(String, Table)> = Vec::new();
    for w in &which {
        match w.as_str() {
            "fig2" => tables.push(("fig2".into(), fig2())),
            "fig8" => tables.push(("fig8".into(), fig8())),
            "fig9" => tables.push(("fig9".into(), fig9())),
            "fig11" => tables.push(("fig11".into(), fig11())),
            "fig12" => tables.push(("fig12".into(), fig12())),
            "fig13" => tables.push(("fig13".into(), fig13())),
            "fig14" => tables.push(("fig14".into(), fig14())),
            "x1" => {
                let (a, b) = x1();
                tables.push(("x1a".into(), a));
                tables.push(("x1b".into(), b));
            }
            "x2" => tables.push(("x2".into(), x2())),
            "x3" => tables.push(("x3".into(), x3())),
            "x4" => tables.push(("x4".into(), x4())),
            "x5" => tables.push(("x5".into(), x5())),
            "x6" => tables.push(("x6".into(), x6())),
            "x7" => tables.push(("x7".into(), x7())),
            "x8" => tables.push(("x8".into(), x8())),
            "x9" => tables.push(("x9".into(), x9())),
            "x10" => tables.push(("x10".into(), x10())),
            "x13" => tables.push(("x13".into(), x13())),
            "x16" => tables.push(("x16".into(), x16())),
            "x17" => tables.push(("x17".into(), x17())),
            "all" => {
                let names = [
                    "fig2", "fig8", "fig9", "fig11", "fig12", "fig13", "fig14", "x1a", "x1b", "x2",
                    "x3", "x4", "x5", "x6", "x7", "x8", "x9", "x10", "x13", "x16", "x17",
                ];
                for (n, t) in names.iter().zip(all_figures()) {
                    tables.push(((*n).into(), t));
                }
            }
            other => {
                eprintln!("unknown figure '{other}'");
                eprintln!(
                    "usage: figures [fig2|fig8|fig9|fig11|fig12|fig13|fig14|x1..x10|x13|x16|x17|all] [--csv DIR]"
                );
                std::process::exit(2);
            }
        }
    }
    emit(tables, csv_dir.as_deref());
}
