//! Renders the Fig. 3 overlap diagram from *measured* span traces:
//! one large datatype transfer per scheme, showing sender CPU, sender
//! NIC, and receiver CPU occupancy over virtual time.
//!
//! ```text
//! cargo run --release -p ibdt-bench --bin timeline [columns]
//! ```
//!
//! Legend: `P` pack, `U` unpack, `R` register/deregister, `p` post,
//! `m` malloc/free, `c` control/cqe handling, `=` wire serialization.

use ibdt_datatype::Datatype;
use ibdt_mpicore::{AppOp, Cluster, ClusterSpec, Scheme};
use ibdt_simcore::trace::Trace;

const WIDTH: usize = 96;

fn lane(trace: &Trace, t0: u64, t1: u64, classify: fn(&str) -> Option<char>) -> String {
    let mut row = vec![' '; WIDTH];
    let span = (t1 - t0).max(1) as f64;
    for s in trace.spans() {
        let Some(ch) = classify(s.label) else {
            continue;
        };
        if s.end <= t0 || s.start >= t1 {
            continue;
        }
        let a = ((s.start.max(t0) - t0) as f64 / span * WIDTH as f64) as usize;
        let b = ((s.end.min(t1) - t0) as f64 / span * WIDTH as f64).ceil() as usize;
        for c in row.iter_mut().take(b.min(WIDTH)).skip(a) {
            *c = ch;
        }
    }
    row.into_iter().collect()
}

fn cpu_class(label: &str) -> Option<char> {
    Some(match label {
        "pack" => 'P',
        "unpack" => 'U',
        "reg" | "dereg" | "malloc+reg" | "hint-reg" => 'R',
        "post" | "post-recv" => 'p',
        "free" => 'm',
        "ctrl" | "cqe" | "call" | "unexpected" => 'c',
        _ => return None,
    })
}

fn nic_class(label: &str) -> Option<char> {
    (label == "wire").then_some('=')
}

fn main() {
    let cols: u64 = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("numeric column count"))
        .unwrap_or(1024);
    let ty = Datatype::vector(128, cols, 4096, &Datatype::int()).expect("valid type");
    println!(
        "one-way transfer of {} columns ({} KiB, {} blocks); width = {} chars",
        cols,
        ty.size() / 1024,
        ty.num_blocks(),
        WIDTH
    );
    println!("legend: P pack  U unpack  R register  p post  c ctrl/cqe  = wire\n");

    for scheme in [
        Scheme::Generic,
        Scheme::BcSpup,
        Scheme::RwgUp,
        Scheme::MultiW,
        Scheme::Hybrid,
    ] {
        let mut spec = ClusterSpec::default();
        spec.mpi.scheme = scheme;
        let mut cluster = Cluster::new(spec);
        let span = ty.true_ub() as u64 + 64;
        let sbuf = cluster.alloc(0, span, 4096);
        let rbuf = cluster.alloc(1, span, 4096);
        cluster.fill_pattern(0, sbuf, span, 1);
        let p0 = vec![
            AppOp::Isend {
                peer: 1,
                buf: sbuf,
                count: 1,
                ty: ty.clone(),
                tag: 0,
            },
            AppOp::WaitAll,
        ];
        let p1 = vec![
            AppOp::Irecv {
                peer: 0,
                buf: rbuf,
                count: 1,
                ty: ty.clone(),
                tag: 0,
            },
            AppOp::WaitAll,
        ];
        let stats = cluster.run(vec![p0, p1]);
        let t1 = stats.finish_ns;
        println!(
            "--- {:?} ({:.1} us, pack/wire overlap {:.1} us) ---",
            scheme,
            t1 as f64 / 1e3,
            stats.pack_wire_overlap_ns[0] as f64 / 1e3
        );
        println!("S-cpu |{}|", lane(cluster.cpu_trace(0), 0, t1, cpu_class));
        println!("S-nic |{}|", lane(cluster.tx_trace(0), 0, t1, nic_class));
        println!("R-cpu |{}|", lane(cluster.cpu_trace(1), 0, t1, cpu_class));
        println!();
    }
}
