//! Steady-state allocation gate: N repeated "persistent" eager sends
//! of the same (datatype, count) perform **zero** heap allocations
//! after warmup. This is the test-suite twin of the
//! `repeated_send/persistent_eager` hotpath benchmark — same loop,
//! same counting allocator, but an exact assertion instead of a
//! report.
//!
//! Keep this file to the one test: the allocation counter is
//! process-global, and a sibling test running on another harness
//! thread would show up in the delta.

use ibdt_datatype::{Datatype, TypeRegistry};
use ibdt_ibsim::Payload;
use ibdt_mpicore::plan::PlanCache;
use ibdt_mpicore::pool::ScratchPool;
use ibdt_testkit::CountingAlloc;
use std::hint::black_box;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn repeated_persistent_sends_allocate_nothing_after_warmup() {
    let ty = Datatype::vector(128, 2, 4096, &Datatype::int()).unwrap();
    let n = ty.size();
    let buf = vec![0x3Cu8; ty.true_ub() as usize + 64];
    let mut registry = TypeRegistry::new();
    let mut cache = PlanCache::new(true, 64);
    let mut scratch = ScratchPool::new();

    let send = |registry: &mut TypeRegistry, cache: &mut PlanCache, scratch: &mut ScratchPool| {
        let plan = cache.lookup(registry, black_box(&ty), 1);
        let mut staging = scratch.take_bytes(n as usize);
        plan.pack(0, n, &buf, 0, &mut staging).unwrap();
        let payload = Payload::build(n as usize, |v| v.extend_from_slice(&staging));
        black_box(payload.as_slice());
        scratch.put_bytes(staging);
        drop(payload);
    };

    // Warmup: fill the plan cache, the scratch pool, and the payload
    // slab pool.
    for _ in 0..64 {
        send(&mut registry, &mut cache, &mut scratch);
    }

    // The counter is process-global and the libtest harness's main
    // thread lazily initializes its mpmc-channel context (one Arc)
    // while blocking for this test's result — a one-shot ambient
    // allocation that can race into the measured window. Measure up
    // to three windows and accept any clean one: a real per-op leak
    // (>= 1 alloc per 512 sends) dirties every window, while one-time
    // harness noise cannot repeat.
    let mut delta = u64::MAX;
    for _ in 0..3 {
        let before = CountingAlloc::allocations();
        for _ in 0..512 {
            send(&mut registry, &mut cache, &mut scratch);
        }
        delta = CountingAlloc::allocations() - before;
        if delta == 0 {
            break;
        }
    }
    assert_eq!(
        delta, 0,
        "512 steady-state sends performed {delta} heap allocations in \
         three consecutive windows; the hot path must be \
         allocation-free after warmup"
    );
}
