//! Smoke tests for the figure harness: the cheap figures run end to end
//! and their headline relationships hold (the expensive sweeps are
//! covered by `tests/paper_claims.rs` at single points).

use ibdt_bench::{x3, x5};

#[test]
fn x3_ogr_never_loses() {
    let t = x3();
    assert!(!t.rows.is_empty());
    for (x, vals) in &t.rows {
        let (per, whole, ogr) = (vals[0], vals[1], vals[2]);
        assert!(ogr <= per + 1e-9, "gap {x}: OGR {ogr} > per-block {per}");
        assert!(ogr <= whole + 1e-9, "gap {x}: OGR {ogr} > whole {whole}");
    }
    // Extremes: OGR tracks whole-extent at gap 0 and per-block at huge
    // gaps.
    let first = &t.rows.first().unwrap().1;
    assert!((first[2] - first[1]).abs() < 1e-6);
    let last = &t.rows.last().unwrap().1;
    assert!((last[2] - last[0]).abs() < 1e-6);
}

#[test]
fn x5_direct_eager_pack_wins() {
    let t = x5();
    for (x, vals) in &t.rows {
        assert!(
            vals[1] < vals[0],
            "cols {x}: direct pack {} !< original {}",
            vals[1],
            vals[0]
        );
    }
}

#[test]
fn table_csv_well_formed() {
    let t = x3();
    let csv = t.to_csv();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), t.rows.len() + 1);
    let cols = lines[0].split(',').count();
    for l in &lines[1..] {
        assert_eq!(l.split(',').count(), cols);
    }
}
