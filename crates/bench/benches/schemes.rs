//! Criterion benchmarks of whole simulations.
//!
//! These time the *simulator* (wall-clock cost of reproducing one
//! figure point), useful for keeping the harness fast; the virtual-time
//! results themselves come from the `figures` binary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ibdt_mpicore::{ClusterSpec, Scheme};
use ibdt_workloads::drivers::pingpong;
use ibdt_workloads::vector::VectorWorkload;
use std::hint::black_box;

fn spec(scheme: Scheme) -> ClusterSpec {
    let mut s = ClusterSpec::default();
    s.mpi.scheme = scheme;
    s
}

fn bench_pingpong_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_pingpong");
    g.sample_size(10);
    for (name, scheme) in [
        ("generic", Scheme::Generic),
        ("bcspup", Scheme::BcSpup),
        ("rwgup", Scheme::RwgUp),
        ("multiw", Scheme::MultiW),
    ] {
        let w = VectorWorkload::new(256);
        g.bench_with_input(BenchmarkId::new(name, 256), &w, |b, w| {
            b.iter(|| {
                let r = pingpong(&spec(scheme), &w.ty, 1, 1, 2);
                black_box(r.one_way_ns)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pingpong_sim);
criterion_main!(benches);
