//! Benchmarks of whole simulations (plain timing harness).
//!
//! These time the *simulator* (wall-clock cost of reproducing one
//! figure point), useful for keeping the harness fast; the virtual-time
//! results themselves come from the `figures` binary.

use ibdt_mpicore::{ClusterSpec, Scheme};
use ibdt_workloads::drivers::pingpong;
use ibdt_workloads::vector::VectorWorkload;
use std::hint::black_box;
use std::time::Instant;

fn spec(scheme: Scheme) -> ClusterSpec {
    let mut s = ClusterSpec::default();
    s.mpi.scheme = scheme;
    s
}

fn main() {
    for (name, scheme) in [
        ("generic", Scheme::Generic),
        ("bcspup", Scheme::BcSpup),
        ("rwgup", Scheme::RwgUp),
        ("multiw", Scheme::MultiW),
    ] {
        let w = VectorWorkload::new(256);
        // Warmup.
        black_box(pingpong(&spec(scheme), &w.ty, 1, 1, 2).one_way_ns);
        let iters = 10;
        let t0 = Instant::now();
        for _ in 0..iters {
            let r = pingpong(&spec(scheme), &w.ty, 1, 1, 2);
            black_box(r.one_way_ns);
        }
        let per_ms = t0.elapsed().as_secs_f64() * 1e3 / iters as f64;
        println!("sim_pingpong/{name}/256 {per_ms:>10.2} ms/iter");
    }
}
