//! Micro-benchmarks of the datatype engine itself (plain timing
//! harness — the workspace builds offline, without Criterion).
//!
//! These measure *real* work — actual packing of bytes through the
//! dataloop engine, dataloop compilation, flattening, OGR planning —
//! not simulated time. They quantify the host-side costs the paper's
//! §3.2 analysis attributes to datatype processing.

use ibdt_datatype::{Datatype, Segment};
use ibdt_memreg::ogr;
use ibdt_memreg::RegCostModel;
use std::hint::black_box;
use std::time::Instant;

/// Times `f` over adaptively chosen iteration counts and reports the
/// best per-iteration time plus optional throughput.
fn bench(name: &str, bytes: Option<u64>, mut f: impl FnMut()) {
    // Warmup.
    for _ in 0..3 {
        f();
    }
    let mut iters = 1u64;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let dt = t0.elapsed();
        if dt.as_millis() >= 50 || iters >= 1 << 20 {
            let per = dt.as_nanos() as f64 / iters as f64;
            match bytes {
                Some(b) => {
                    let mbs = b as f64 / per * 1e3; // bytes/ns -> MB/s
                    println!("{name:<44} {per:>12.0} ns/iter  {mbs:>9.1} MB/s");
                }
                None => println!("{name:<44} {per:>12.0} ns/iter"),
            }
            return;
        }
        iters *= 4;
    }
}

fn vector_ty(cols: u64) -> Datatype {
    Datatype::vector(128, cols, 4096, &Datatype::int()).unwrap()
}

fn bench_pack() {
    for cols in [4u64, 64, 1024] {
        let ty = vector_ty(cols);
        let seg = Segment::new(&ty, 1);
        let n = seg.total_bytes();
        let buf = vec![0xA5u8; ty.true_ub() as usize + 64];
        let mut out = vec![0u8; n as usize];
        bench(&format!("segment_pack/vector_cols/{cols}"), Some(n), || {
            seg.pack(0, n, black_box(&buf), 0, black_box(&mut out))
                .unwrap();
        });
    }
}

fn bench_unpack() {
    for cols in [4u64, 64, 1024] {
        let ty = vector_ty(cols);
        let seg = Segment::new(&ty, 1);
        let n = seg.total_bytes();
        let mut buf = vec![0u8; ty.true_ub() as usize + 64];
        let stream = vec![0x5Au8; n as usize];
        bench(
            &format!("segment_unpack/vector_cols/{cols}"),
            Some(n),
            || {
                seg.unpack(0, n, black_box(&stream), black_box(&mut buf), 0)
                    .unwrap();
            },
        );
    }
}

fn bench_partial_pack() {
    // Partial processing: pack 128 KB segments out of a 2 MB message —
    // the BC-SPUP inner loop.
    let ty = vector_ty(1024);
    let seg = Segment::new(&ty, 1);
    let n = seg.total_bytes();
    let buf = vec![1u8; ty.true_ub() as usize + 64];
    let chunk = 128 * 1024u64;
    let mut out = vec![0u8; chunk as usize];
    bench("partial_pack/128KB_segments_of_2MB", Some(n), || {
        let mut lo = 0;
        while lo < n {
            let hi = (lo + chunk).min(n);
            seg.pack(lo, hi, black_box(&buf), 0, &mut out[..(hi - lo) as usize])
                .unwrap();
            lo = hi;
        }
    });
}

fn bench_compile() {
    bench("dataloop/compile_nested_struct", None, || {
        let s = Datatype::struct_(&[
            (2, 0, Datatype::int()),
            (1, 16, Datatype::double()),
            (3, 32, Datatype::int()),
        ])
        .unwrap();
        let v = Datatype::hvector(16, 2, 128, &s).unwrap();
        let t = Datatype::contiguous(4, &v).unwrap();
        black_box(t.dataloop().stream_size());
    });
    bench("dataloop/flatten_vector_2048", None, || {
        let t = vector_ty(2048);
        black_box(t.flat().blocks.len());
    });
}

fn bench_ogr() {
    let model = RegCostModel::default();
    for nblocks in [128usize, 1024, 8192] {
        let blocks: Vec<(u64, u64)> = (0..nblocks as u64).map(|i| (i * 16384, 4096)).collect();
        bench(&format!("ogr_plan/blocks/{nblocks}"), None, || {
            black_box(ogr::plan(black_box(&blocks), &model).regions.len());
        });
    }
}

fn main() {
    bench_pack();
    bench_unpack();
    bench_partial_pack();
    bench_compile();
    bench_ogr();
}
