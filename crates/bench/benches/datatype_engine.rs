//! Criterion micro-benchmarks of the datatype engine itself.
//!
//! These measure *real* work — actual packing of bytes through the
//! dataloop engine, dataloop compilation, flattening, OGR planning —
//! not simulated time. They quantify the host-side costs the paper's
//! §3.2 analysis attributes to datatype processing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ibdt_datatype::{Datatype, Segment};
use ibdt_memreg::ogr;
use ibdt_memreg::RegCostModel;
use std::hint::black_box;

fn vector_ty(cols: u64) -> Datatype {
    Datatype::vector(128, cols, 4096, &Datatype::int()).unwrap()
}

fn bench_pack(c: &mut Criterion) {
    let mut g = c.benchmark_group("segment_pack");
    for cols in [4u64, 64, 1024] {
        let ty = vector_ty(cols);
        let seg = Segment::new(&ty, 1);
        let n = seg.total_bytes();
        let buf = vec![0xA5u8; ty.true_ub() as usize + 64];
        let mut out = vec![0u8; n as usize];
        g.throughput(Throughput::Bytes(n));
        g.bench_with_input(BenchmarkId::new("vector_cols", cols), &cols, |b, _| {
            b.iter(|| {
                seg.pack(0, n, black_box(&buf), 0, black_box(&mut out)).unwrap();
            });
        });
    }
    g.finish();
}

fn bench_unpack(c: &mut Criterion) {
    let mut g = c.benchmark_group("segment_unpack");
    for cols in [4u64, 64, 1024] {
        let ty = vector_ty(cols);
        let seg = Segment::new(&ty, 1);
        let n = seg.total_bytes();
        let mut buf = vec![0u8; ty.true_ub() as usize + 64];
        let stream = vec![0x5Au8; n as usize];
        g.throughput(Throughput::Bytes(n));
        g.bench_with_input(BenchmarkId::new("vector_cols", cols), &cols, |b, _| {
            b.iter(|| {
                seg.unpack(0, n, black_box(&stream), black_box(&mut buf), 0).unwrap();
            });
        });
    }
    g.finish();
}

fn bench_partial_pack(c: &mut Criterion) {
    // Partial processing: pack 128 KB segments out of a 2 MB message —
    // the BC-SPUP inner loop.
    let ty = vector_ty(1024);
    let seg = Segment::new(&ty, 1);
    let n = seg.total_bytes();
    let buf = vec![1u8; ty.true_ub() as usize + 64];
    let chunk = 128 * 1024u64;
    let mut out = vec![0u8; chunk as usize];
    let mut g = c.benchmark_group("partial_pack");
    g.throughput(Throughput::Bytes(n));
    g.bench_function("128KB_segments_of_2MB", |b| {
        b.iter(|| {
            let mut lo = 0;
            while lo < n {
                let hi = (lo + chunk).min(n);
                seg.pack(lo, hi, black_box(&buf), 0, &mut out[..(hi - lo) as usize])
                    .unwrap();
                lo = hi;
            }
        });
    });
    g.finish();
}

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("dataloop");
    g.bench_function("compile_nested_struct", |b| {
        b.iter(|| {
            let s = Datatype::struct_(&[
                (2, 0, Datatype::int()),
                (1, 16, Datatype::double()),
                (3, 32, Datatype::int()),
            ])
            .unwrap();
            let v = Datatype::hvector(16, 2, 128, &s).unwrap();
            let t = Datatype::contiguous(4, &v).unwrap();
            black_box(t.dataloop().stream_size())
        });
    });
    g.bench_function("flatten_vector_2048", |b| {
        b.iter(|| {
            let t = vector_ty(2048);
            black_box(t.flat().blocks.len())
        });
    });
    g.finish();
}

fn bench_ogr(c: &mut Criterion) {
    let model = RegCostModel::default();
    let mut g = c.benchmark_group("ogr_plan");
    for nblocks in [128usize, 1024, 8192] {
        let blocks: Vec<(u64, u64)> = (0..nblocks as u64).map(|i| (i * 16384, 4096)).collect();
        g.bench_with_input(BenchmarkId::new("blocks", nblocks), &nblocks, |b, _| {
            b.iter(|| black_box(ogr::plan(black_box(&blocks), &model).regions.len()));
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_pack,
    bench_unpack,
    bench_partial_pack,
    bench_compile,
    bench_ogr
);
criterion_main!(benches);
