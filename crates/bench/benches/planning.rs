//! Criterion benchmarks of the protocol planning paths (real work, not
//! simulated time): Multi-W write planning, Hybrid partitioning, OGR,
//! and layout wire encode/decode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ibdt_datatype::{Datatype, FlatLayout};
use ibdt_mpicore::plan::{chunk_gather, hybrid_partition, plan_multi_w};
use std::hint::black_box;

fn blocks(n: u64, len: u64, stride: u64, base: u64) -> Vec<(u64, u64)> {
    (0..n).map(|i| (base + i * stride, len)).collect()
}

fn bench_plan_multi_w(c: &mut Criterion) {
    let mut g = c.benchmark_group("plan_multi_w");
    for n in [128u64, 1024, 8192] {
        let snd = blocks(n, 512, 2048, 0);
        // Receiver misaligned: 3 sender blocks per 2 receiver blocks.
        let rcv = blocks(n * 512 / 768, 768, 4096, 1 << 30);
        g.bench_with_input(BenchmarkId::new("misaligned", n), &n, |b, _| {
            b.iter(|| black_box(plan_multi_w(black_box(&snd), black_box(&rcv), 64).len()));
        });
    }
    g.finish();
}

fn bench_hybrid_partition(c: &mut Criterion) {
    let mut g = c.benchmark_group("hybrid_partition");
    for n in [128usize, 4096] {
        let lens: Vec<u64> = (0..n).map(|i| if i % 2 == 0 { 8192 } else { 64 }).collect();
        g.bench_with_input(BenchmarkId::new("alternating", n), &n, |b, _| {
            b.iter(|| black_box(hybrid_partition(black_box(&lens), 1024).packed_bytes));
        });
    }
    g.finish();
}

fn bench_chunk_gather(c: &mut Criterion) {
    let bl = blocks(4096, 256, 1024, 0);
    c.bench_function("chunk_gather_4096_blocks", |b| {
        b.iter(|| black_box(chunk_gather(black_box(&bl), 64).len()));
    });
}

fn bench_layout_wire(c: &mut Criterion) {
    let ty = Datatype::vector(2048, 128, 4096, &Datatype::int()).unwrap();
    let flat = ty.flat();
    let enc = flat.encode();
    let mut g = c.benchmark_group("layout_wire");
    g.bench_function("encode_2048_blocks", |b| {
        b.iter(|| black_box(flat.encode().len()));
    });
    g.bench_function("decode_2048_blocks", |b| {
        b.iter(|| black_box(FlatLayout::decode(black_box(&enc)).unwrap().blocks.len()));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_plan_multi_w,
    bench_hybrid_partition,
    bench_chunk_gather,
    bench_layout_wire
);
criterion_main!(benches);
