//! Benchmarks of the protocol planning paths (real work, not simulated
//! time): Multi-W write planning, Hybrid partitioning, OGR, and layout
//! wire encode/decode. Plain timing harness — no Criterion offline.

use ibdt_datatype::{Datatype, FlatLayout};
use ibdt_mpicore::plan::{chunk_gather, hybrid_partition, plan_multi_w};
use std::hint::black_box;
use std::time::Instant;

fn bench(name: &str, mut f: impl FnMut()) {
    for _ in 0..3 {
        f();
    }
    let mut iters = 1u64;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let dt = t0.elapsed();
        if dt.as_millis() >= 50 || iters >= 1 << 20 {
            let per = dt.as_nanos() as f64 / iters as f64;
            println!("{name:<44} {per:>12.0} ns/iter");
            return;
        }
        iters *= 4;
    }
}

fn blocks(n: u64, len: u64, stride: u64, base: u64) -> Vec<(u64, u64)> {
    (0..n).map(|i| (base + i * stride, len)).collect()
}

fn bench_plan_multi_w() {
    for n in [128u64, 1024, 8192] {
        let snd = blocks(n, 512, 2048, 0);
        // Receiver misaligned: 3 sender blocks per 2 receiver blocks.
        let rcv = blocks(n * 512 / 768, 768, 4096, 1 << 30);
        bench(&format!("plan_multi_w/misaligned/{n}"), || {
            black_box(plan_multi_w(black_box(&snd), black_box(&rcv), 64).len());
        });
    }
}

fn bench_hybrid_partition() {
    for n in [128usize, 4096] {
        let lens: Vec<u64> = (0..n).map(|i| if i % 2 == 0 { 8192 } else { 64 }).collect();
        bench(&format!("hybrid_partition/alternating/{n}"), || {
            black_box(hybrid_partition(black_box(&lens), 1024).packed_bytes);
        });
    }
}

fn bench_chunk_gather() {
    let bl = blocks(4096, 256, 1024, 0);
    bench("chunk_gather_4096_blocks", || {
        black_box(chunk_gather(black_box(&bl), 64).len());
    });
}

fn bench_layout_wire() {
    let ty = Datatype::vector(2048, 128, 4096, &Datatype::int()).unwrap();
    let flat = ty.flat();
    let enc = flat.encode();
    bench("layout_wire/encode_2048_blocks", || {
        black_box(flat.encode().len());
    });
    bench("layout_wire/decode_2048_blocks", || {
        black_box(FlatLayout::decode(black_box(&enc)).unwrap().blocks.len());
    });
}

fn main() {
    bench_plan_multi_w();
    bench_hybrid_partition();
    bench_chunk_gather();
    bench_layout_wire();
}
