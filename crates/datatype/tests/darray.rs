//! `darray` (block-cyclic distributed array) tests against an
//! independent reference model of the MPI distribution rules.

use ibdt_datatype::typ::Distribution;
use ibdt_datatype::Datatype;

/// Reference: global row-major element indices owned by `rank`,
/// in local-array order.
fn reference_elements(
    rank: u32,
    gsizes: &[u64],
    distribs: &[Distribution],
    psizes: &[u32],
) -> Vec<u64> {
    let n = gsizes.len();
    let mut coords = vec![0u32; n];
    let mut rest = rank;
    for i in 0..n {
        let below: u32 = psizes[i + 1..].iter().product();
        coords[i] = rest / below;
        rest %= below;
    }
    let owned_per_dim: Vec<Vec<u64>> = (0..n)
        .map(|i| {
            let (g, p, c) = (gsizes[i], psizes[i] as u64, coords[i] as u64);
            match distribs[i] {
                Distribution::None => (0..g).collect(),
                Distribution::Block(darg) => {
                    let d = darg.unwrap_or(g.div_ceil(p));
                    ((c * d).min(g)..((c + 1) * d).min(g)).collect()
                }
                Distribution::Cyclic(k) => (0..g).filter(|x| (x / k) % p == c).collect(),
            }
        })
        .collect();
    // Cartesian product in row-major local order.
    let mut out = vec![0u64];
    for (i, owned) in owned_per_dim.iter().enumerate() {
        let stride: u64 = gsizes[i + 1..].iter().product();
        let mut next = Vec::with_capacity(out.len() * owned.len());
        for &base in &out {
            for &g in owned {
                next.push(base + g * stride);
            }
        }
        out = next;
    }
    out
}

fn check(size: u32, gsizes: &[u64], distribs: &[Distribution], psizes: &[u32]) {
    let elem = Datatype::int();
    let total: u64 = gsizes.iter().product::<u64>() * 4;
    let mut all_owned: Vec<u64> = Vec::new();
    for rank in 0..size {
        let t = Datatype::darray(size, rank, gsizes, distribs, psizes, &elem)
            .unwrap_or_else(|e| panic!("rank {rank}: {e:?}"));
        // Extent is the whole global array.
        assert_eq!(t.extent() as u64, total, "extent");
        // Flattened byte offsets == reference element offsets * 4.
        let got: Vec<u64> = t
            .flat()
            .blocks
            .iter()
            .flat_map(|&(o, l)| {
                assert!(o >= 0 && l % 4 == 0);
                (0..l / 4).map(move |k| o as u64 + k * 4)
            })
            .collect();
        let want: Vec<u64> = reference_elements(rank, gsizes, distribs, psizes)
            .into_iter()
            .map(|e| e * 4)
            .collect();
        assert_eq!(got, want, "rank {rank} layout mismatch");
        all_owned.extend(want);
    }
    // Partition: every element owned exactly once across ranks.
    all_owned.sort_unstable();
    let expect: Vec<u64> = (0..total / 4).map(|e| e * 4).collect();
    assert_eq!(all_owned, expect, "distribution is not a partition");
}

#[test]
fn block_block_2d() {
    check(
        4,
        &[8, 8],
        &[Distribution::Block(None), Distribution::Block(None)],
        &[2, 2],
    );
}

#[test]
fn block_uneven_sizes() {
    // 7 rows over 3 procs: blocks of 3, 3, 1.
    check(3, &[7], &[Distribution::Block(None)], &[3]);
    // Last process may own nothing: 4 rows over 3 procs with block 2.
    check(3, &[4], &[Distribution::Block(Some(2))], &[3]);
}

#[test]
fn cyclic_1d() {
    check(4, &[16], &[Distribution::Cyclic(1)], &[4]);
    check(3, &[17], &[Distribution::Cyclic(2)], &[3]);
    check(2, &[10], &[Distribution::Cyclic(7)], &[2]); // chunk > share
}

#[test]
fn cyclic_block_mixed_2d() {
    check(
        6,
        &[12, 10],
        &[Distribution::Cyclic(2), Distribution::Block(None)],
        &[3, 2],
    );
}

#[test]
fn none_dimension() {
    check(
        2,
        &[4, 6],
        &[Distribution::Block(None), Distribution::None],
        &[2, 1],
    );
}

#[test]
fn three_dims() {
    check(
        8,
        &[4, 4, 4],
        &[
            Distribution::Block(None),
            Distribution::Cyclic(1),
            Distribution::Block(None),
        ],
        &[2, 2, 2],
    );
}

#[test]
fn scalapack_style_2d_block_cyclic() {
    // The ScaLAPACK canonical case: 2D block-cyclic with 2x2 blocks on
    // a 2x3 grid.
    check(
        6,
        &[8, 9],
        &[Distribution::Cyclic(2), Distribution::Cyclic(2)],
        &[2, 3],
    );
}

#[test]
fn invalid_arguments_rejected() {
    let e = Datatype::int();
    let blk = Distribution::Block(Option::None);
    // Grid does not multiply to size.
    assert!(Datatype::darray(4, 0, &[8], &[blk], &[3], &e).is_err());
    // Rank out of range.
    assert!(Datatype::darray(2, 2, &[8], &[blk], &[2], &e).is_err());
    // None on a distributed dimension.
    assert!(Datatype::darray(2, 0, &[8], &[Distribution::None], &[2], &e).is_err());
    // Block size too small to cover.
    assert!(Datatype::darray(2, 0, &[8], &[Distribution::Block(Some(2))], &[2], &e).is_err());
    // Zero cyclic chunk.
    assert!(Datatype::darray(2, 0, &[8], &[Distribution::Cyclic(0)], &[2], &e).is_err());
    // Mismatched array lengths.
    assert!(Datatype::darray(2, 0, &[8, 8], &[blk], &[2], &e).is_err());
}

#[test]
fn darray_transfers_through_the_engine() {
    // A darray type must pack/unpack like any other datatype.
    use ibdt_datatype::Segment;
    let t = Datatype::darray(
        4,
        2,
        &[8, 8],
        &[Distribution::Cyclic(2), Distribution::Block(None)],
        &[2, 2],
        &Datatype::int(),
    )
    .unwrap();
    let buf: Vec<u8> = (0..t.extent() as usize).map(|i| (i % 251) as u8).collect();
    let seg = Segment::new(&t, 1);
    let n = seg.total_bytes();
    let mut packed = vec![0u8; n as usize];
    seg.pack(0, n, &buf, 0, &mut packed).unwrap();
    let mut restored = vec![0u8; buf.len()];
    seg.unpack(0, n, &packed, &mut restored, 0).unwrap();
    seg.for_each_block(0, n, |off, len| {
        let r = off as usize..(off + len as i64) as usize;
        assert_eq!(&restored[r.clone()], &buf[r]);
    })
    .unwrap();
}
