//! Property-based tests for the datatype engine.
//!
//! The generator builds a random type tree *together with* an
//! independent reference model: the flat list of byte offsets each
//! primitive element occupies, computed directly from the MPI typemap
//! rules without going through dataloops. Every property then checks the
//! engine against this reference.

use ibdt_datatype::{Datatype, FlatLayout, Segment};
use proptest::prelude::*;

/// A datatype plus the byte offsets of its typemap, in pack order.
#[derive(Debug, Clone)]
struct Model {
    ty: Datatype,
    /// Byte offsets (relative to datatype origin) in pack order.
    bytes: Vec<i64>,
}

fn prim_model() -> impl Strategy<Value = Model> {
    proptest::sample::select(vec![
        ibdt_datatype::Primitive::Byte,
        ibdt_datatype::Primitive::Short,
        ibdt_datatype::Primitive::Int,
        ibdt_datatype::Primitive::Double,
    ])
    .prop_map(|p| {
        let ty = Datatype::primitive(p);
        Model {
            bytes: (0..p.size() as i64).collect(),
            ty,
        }
    })
}

fn shift(bytes: &[i64], d: i64) -> Vec<i64> {
    bytes.iter().map(|b| b + d).collect()
}

fn derived(inner: impl Strategy<Value = Model> + Clone) -> impl Strategy<Value = Model> {
    let contig = (inner.clone(), 0u64..4).prop_filter_map("contig", |(m, count)| {
        let ty = Datatype::contiguous(count, &m.ty).ok()?;
        let ext = m.ty.extent();
        let mut bytes = Vec::new();
        for i in 0..count as i64 {
            bytes.extend(shift(&m.bytes, i * ext));
        }
        Some(Model { ty, bytes })
    });
    let hvector = (inner.clone(), 1u64..4, 1u64..4, -48i64..64).prop_filter_map(
        "hvector",
        |(m, count, blocklen, stride)| {
            let ty = Datatype::hvector(count, blocklen, stride, &m.ty).ok()?;
            let ext = m.ty.extent();
            let mut bytes = Vec::new();
            for i in 0..count as i64 {
                for j in 0..blocklen as i64 {
                    bytes.extend(shift(&m.bytes, i * stride + j * ext));
                }
            }
            Some(Model { ty, bytes })
        },
    );
    let hindexed = (
        inner.clone(),
        proptest::collection::vec((0u64..3, -64i64..128), 1..4),
    )
        .prop_filter_map("hindexed", |(m, blocks)| {
            let ty = Datatype::hindexed(&blocks, &m.ty).ok()?;
            let ext = m.ty.extent();
            let mut bytes = Vec::new();
            for &(l, d) in &blocks {
                for j in 0..l as i64 {
                    bytes.extend(shift(&m.bytes, d + j * ext));
                }
            }
            Some(Model { ty, bytes })
        });
    let strct = (
        inner.clone(),
        inner.clone(),
        0i64..128,
        1u64..3,
        1u64..3,
    )
        .prop_filter_map("struct", |(a, b, d2, l1, l2)| {
            let fields = [(l1, 0i64, a.ty.clone()), (l2, d2, b.ty.clone())];
            let ty = Datatype::struct_(&fields).ok()?;
            let mut bytes = Vec::new();
            for (l, d, src) in [(l1, 0i64, &a), (l2, d2, &b)] {
                let ext = src.ty.extent();
                for j in 0..l as i64 {
                    bytes.extend(shift(&src.bytes, d + j * ext));
                }
            }
            Some(Model { ty, bytes })
        });
    let resized = (inner, -32i64..32, 0i64..256).prop_filter_map("resized", |(m, lb, ext)| {
        let ty = Datatype::resized(&m.ty, lb, ext).ok()?;
        Some(Model { ty, bytes: m.bytes })
    });
    prop_oneof![contig, hvector, hindexed, strct, resized]
}

fn model_strategy() -> impl Strategy<Value = Model> {
    prim_model().prop_recursive(3, 512, 4, |inner| derived(inner).boxed())
}

/// Layout of the buffer needed to hold `count` instances: returns
/// `(buf_base, buf_len)` such that every element fits.
fn buffer_for(m: &Model, count: u64) -> (usize, usize) {
    // True bounds (not lb/ub): `resized` may shrink the declared extent
    // below the data's real span.
    let ext = m.ty.extent();
    let lo = m.ty.true_lb().min(0);
    let hi = (count.saturating_sub(1)) as i64 * ext + m.ty.true_ub().max(0);
    let base = (-lo) as usize + 16;
    let len = base + hi.max(0) as usize + 16;
    (base, len)
}

/// Reference pack: gather bytes of all instances in typemap order.
fn reference_pack(m: &Model, count: u64, buf: &[u8], base: usize) -> Vec<u8> {
    let ext = m.ty.extent();
    let mut out = Vec::with_capacity((count * m.ty.size()) as usize);
    for i in 0..count as i64 {
        for &b in &m.bytes {
            out.push(buf[(base as i64 + i * ext + b) as usize]);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn size_matches_reference(m in model_strategy()) {
        prop_assert_eq!(m.ty.size(), m.bytes.len() as u64);
    }

    #[test]
    fn bounds_cover_typemap(m in model_strategy()) {
        // All elements lie within [lb, ub] unless resized shrank them —
        // the un-resized typemap is what `bytes` models, so check only
        // that size-consistent blocks exist.
        let flat = m.ty.flat();
        let total: u64 = flat.blocks.iter().map(|&(_, l)| l).sum();
        prop_assert_eq!(total, m.ty.size());
    }

    #[test]
    fn flat_blocks_match_reference_bytes(m in model_strategy()) {
        // Expanding the flattened blocks byte-by-byte must equal the
        // reference typemap byte sequence.
        let expanded: Vec<i64> = m
            .ty
            .flat()
            .blocks
            .iter()
            .flat_map(|&(o, l)| o..o + l as i64)
            .collect();
        prop_assert_eq!(&expanded, &m.bytes);
    }

    #[test]
    fn whole_pack_matches_reference(
        (m, count) in model_strategy().prop_flat_map(|m| (Just(m), 1u64..4)),
        seed in any::<u64>(),
    ) {
        let (base, len) = buffer_for(&m, count);
        let buf: Vec<u8> = (0..len).map(|i| ((i as u64).wrapping_mul(seed | 1) >> 3) as u8).collect();
        let seg = Segment::new(&m.ty, count);
        let n = seg.total_bytes();
        let mut packed = vec![0u8; n as usize];
        seg.pack(0, n, &buf, base, &mut packed).unwrap();
        prop_assert_eq!(packed, reference_pack(&m, count, &buf, base));
    }

    #[test]
    fn segmented_pack_equals_whole(
        (m, count) in model_strategy().prop_flat_map(|m| (Just(m), 1u64..4)),
        cuts in proptest::collection::vec(any::<u16>(), 0..6),
    ) {
        let (base, len) = buffer_for(&m, count);
        let buf: Vec<u8> = (0..len).map(|i| (i % 253) as u8).collect();
        let seg = Segment::new(&m.ty, count);
        let n = seg.total_bytes();
        let mut whole = vec![0u8; n as usize];
        seg.pack(0, n, &buf, base, &mut whole).unwrap();

        let mut points: Vec<u64> = cuts.iter().map(|&c| c as u64 % (n + 1)).collect();
        points.push(0);
        points.push(n);
        points.sort_unstable();
        let mut pieces = vec![0u8; n as usize];
        for w in points.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            seg.pack(lo, hi, &buf, base, &mut pieces[lo as usize..hi as usize]).unwrap();
        }
        prop_assert_eq!(pieces, whole);
    }

    #[test]
    fn unpack_restores_exactly_datatype_bytes(
        (m, count) in model_strategy().prop_flat_map(|m| (Just(m), 1u64..3)),
    ) {
        let (base, len) = buffer_for(&m, count);
        // Self-overlapping typemaps are legal to send but erroneous to
        // receive into (MPI-1 §3.12.5); the round-trip property only
        // holds for non-overlapping layouts.
        let ext = m.ty.extent();
        let mut positions: Vec<i64> = (0..count as i64)
            .flat_map(|i| m.bytes.iter().map(move |&b| i * ext + b))
            .collect();
        let total = positions.len();
        positions.sort_unstable();
        positions.dedup();
        prop_assume!(positions.len() == total);

        let seg = Segment::new(&m.ty, count);
        let n = seg.total_bytes();
        let stream: Vec<u8> = (0..n).map(|i| (i % 241) as u8).collect();
        let mut buf = vec![0xEEu8; len];
        seg.unpack(0, n, &stream, &mut buf, base).unwrap();
        // Re-pack what we unpacked: must round-trip.
        let mut repacked = vec![0u8; n as usize];
        seg.pack(0, n, &buf, base, &mut repacked).unwrap();
        prop_assert_eq!(&repacked, &stream);
        // Bytes outside the typemap are untouched.
        let mut touched = vec![false; len];
        seg.for_each_block(0, n, |off, l| {
            for p in off..off + l as i64 {
                touched[(base as i64 + p) as usize] = true;
            }
        }).unwrap();
        for (i, &t) in touched.iter().enumerate() {
            if !t {
                prop_assert_eq!(buf[i], 0xEE, "byte {} was touched", i);
            }
        }
    }

    #[test]
    fn layout_serialization_roundtrip(m in model_strategy()) {
        let f = m.ty.flat();
        let dec = FlatLayout::decode(&f.encode()).unwrap();
        prop_assert_eq!(f.as_ref().clone(), dec);
    }

    #[test]
    fn block_stats_consistent(m in model_strategy(), count in 1u64..4) {
        let s = m.ty.flat().stats(count);
        prop_assert_eq!(s.total, count * m.ty.size());
        if s.count > 0 {
            prop_assert!(s.min <= s.median && s.median <= s.max);
            prop_assert!(s.mean >= s.min as f64 && s.mean <= s.max as f64);
        }
    }
}
