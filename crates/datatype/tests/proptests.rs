//! Randomized model-based tests for the datatype engine.
//!
//! The generator builds a random type tree *together with* an
//! independent reference model: the flat list of byte offsets each
//! primitive element occupies, computed directly from the MPI typemap
//! rules without going through dataloops. Every property then checks
//! the engine against this reference. Driven by [`ibdt_testkit`]
//! seeded cases (the workspace builds offline, without proptest).

use ibdt_datatype::{Datatype, FlatLayout, Segment, TransferPlan};
use ibdt_testkit::{cases, Rng};

/// A datatype plus the byte offsets of its typemap, in pack order.
#[derive(Debug, Clone)]
struct Model {
    ty: Datatype,
    /// Byte offsets (relative to datatype origin) in pack order.
    bytes: Vec<i64>,
}

fn prim_model(rng: &mut Rng) -> Model {
    let p = rng.pick(&[
        ibdt_datatype::Primitive::Byte,
        ibdt_datatype::Primitive::Short,
        ibdt_datatype::Primitive::Int,
        ibdt_datatype::Primitive::Double,
    ]);
    Model {
        bytes: (0..p.size() as i64).collect(),
        ty: Datatype::primitive(p),
    }
}

fn shift(bytes: &[i64], d: i64) -> Vec<i64> {
    bytes.iter().map(|b| b + d).collect()
}

/// One random derived layer over `m`. Mirrors the MPI typemap rules
/// independently of the engine's dataloop machinery. Returns `None`
/// when the random parameters are rejected by the constructor.
fn derive(rng: &mut Rng, m: &Model) -> Option<Model> {
    match rng.range_u64(0, 5) {
        0 => {
            let count = rng.range_u64(0, 4);
            let ty = Datatype::contiguous(count, &m.ty).ok()?;
            let ext = m.ty.extent();
            let mut bytes = Vec::new();
            for i in 0..count as i64 {
                bytes.extend(shift(&m.bytes, i * ext));
            }
            Some(Model { ty, bytes })
        }
        1 => {
            let count = rng.range_u64(1, 4);
            let blocklen = rng.range_u64(1, 4);
            let stride = rng.range_i64(-48, 64);
            let ty = Datatype::hvector(count, blocklen, stride, &m.ty).ok()?;
            let ext = m.ty.extent();
            let mut bytes = Vec::new();
            for i in 0..count as i64 {
                for j in 0..blocklen as i64 {
                    bytes.extend(shift(&m.bytes, i * stride + j * ext));
                }
            }
            Some(Model { ty, bytes })
        }
        2 => {
            let nblocks = rng.range_usize(1, 4);
            let blocks: Vec<(u64, i64)> = (0..nblocks)
                .map(|_| (rng.range_u64(0, 3), rng.range_i64(-64, 128)))
                .collect();
            let ty = Datatype::hindexed(&blocks, &m.ty).ok()?;
            let ext = m.ty.extent();
            let mut bytes = Vec::new();
            for &(l, d) in &blocks {
                for j in 0..l as i64 {
                    bytes.extend(shift(&m.bytes, d + j * ext));
                }
            }
            Some(Model { ty, bytes })
        }
        3 => {
            // Struct of this model and a fresh independent one.
            let b = model(rng);
            let d2 = rng.range_i64(0, 128);
            let l1 = rng.range_u64(1, 3);
            let l2 = rng.range_u64(1, 3);
            let fields = [(l1, 0i64, m.ty.clone()), (l2, d2, b.ty.clone())];
            let ty = Datatype::struct_(&fields).ok()?;
            let mut bytes = Vec::new();
            for (l, d, src) in [(l1, 0i64, m), (l2, d2, &b)] {
                let ext = src.ty.extent();
                for j in 0..l as i64 {
                    bytes.extend(shift(&src.bytes, d + j * ext));
                }
            }
            Some(Model { ty, bytes })
        }
        _ => {
            let lb = rng.range_i64(-32, 32);
            let ext = rng.range_i64(0, 256);
            let ty = Datatype::resized(&m.ty, lb, ext).ok()?;
            Some(Model {
                ty,
                bytes: m.bytes.clone(),
            })
        }
    }
}

/// Random model: a primitive wrapped in 0..=3 derived layers.
fn model(rng: &mut Rng) -> Model {
    let mut m = prim_model(rng);
    let layers = rng.range_u64(0, 4);
    for _ in 0..layers {
        // Rejected parameter combinations keep the previous layer.
        if let Some(next) = derive(rng, &m) {
            m = next;
        }
    }
    m
}

/// Layout of the buffer needed to hold `count` instances: returns
/// `(buf_base, buf_len)` such that every element fits.
fn buffer_for(m: &Model, count: u64) -> (usize, usize) {
    // True bounds (not lb/ub): `resized` may shrink the declared extent
    // below the data's real span.
    let ext = m.ty.extent();
    let lo = m.ty.true_lb().min(0);
    let hi = (count.saturating_sub(1)) as i64 * ext + m.ty.true_ub().max(0);
    let base = (-lo) as usize + 16;
    let len = base + hi.max(0) as usize + 16;
    (base, len)
}

/// Reference pack: gather bytes of all instances in typemap order.
fn reference_pack(m: &Model, count: u64, buf: &[u8], base: usize) -> Vec<u8> {
    let ext = m.ty.extent();
    let mut out = Vec::with_capacity((count * m.ty.size()) as usize);
    for i in 0..count as i64 {
        for &b in &m.bytes {
            out.push(buf[(base as i64 + i * ext + b) as usize]);
        }
    }
    out
}

#[test]
fn size_matches_reference() {
    cases(0xD7A0_0001, 256, |rng| {
        let m = model(rng);
        assert_eq!(m.ty.size(), m.bytes.len() as u64);
    });
}

#[test]
fn bounds_cover_typemap() {
    cases(0xD7A0_0002, 256, |rng| {
        // All elements lie within [lb, ub] unless resized shrank them —
        // the un-resized typemap is what `bytes` models, so check only
        // that size-consistent blocks exist.
        let m = model(rng);
        let flat = m.ty.flat();
        let total: u64 = flat.blocks.iter().map(|&(_, l)| l).sum();
        assert_eq!(total, m.ty.size());
    });
}

#[test]
fn flat_blocks_match_reference_bytes() {
    cases(0xD7A0_0003, 256, |rng| {
        // Expanding the flattened blocks byte-by-byte must equal the
        // reference typemap byte sequence.
        let m = model(rng);
        let expanded: Vec<i64> =
            m.ty.flat()
                .blocks
                .iter()
                .flat_map(|&(o, l)| o..o + l as i64)
                .collect();
        assert_eq!(expanded, m.bytes);
    });
}

#[test]
fn whole_pack_matches_reference() {
    cases(0xD7A0_0004, 256, |rng| {
        let m = model(rng);
        let count = rng.range_u64(1, 4);
        let seed = rng.next_u64();
        let (base, len) = buffer_for(&m, count);
        let buf: Vec<u8> = (0..len)
            .map(|i| ((i as u64).wrapping_mul(seed | 1) >> 3) as u8)
            .collect();
        let seg = Segment::new(&m.ty, count);
        let n = seg.total_bytes();
        let mut packed = vec![0u8; n as usize];
        seg.pack(0, n, &buf, base, &mut packed).unwrap();
        assert_eq!(packed, reference_pack(&m, count, &buf, base));
    });
}

#[test]
fn segmented_pack_equals_whole() {
    cases(0xD7A0_0005, 256, |rng| {
        let m = model(rng);
        let count = rng.range_u64(1, 4);
        let (base, len) = buffer_for(&m, count);
        let buf: Vec<u8> = (0..len).map(|i| (i % 253) as u8).collect();
        let seg = Segment::new(&m.ty, count);
        let n = seg.total_bytes();
        let mut whole = vec![0u8; n as usize];
        seg.pack(0, n, &buf, base, &mut whole).unwrap();

        let ncuts = rng.range_usize(0, 6);
        let mut points: Vec<u64> = (0..ncuts).map(|_| rng.range_u64(0, n + 1)).collect();
        points.push(0);
        points.push(n);
        points.sort_unstable();
        let mut pieces = vec![0u8; n as usize];
        for w in points.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            seg.pack(lo, hi, &buf, base, &mut pieces[lo as usize..hi as usize])
                .unwrap();
        }
        assert_eq!(pieces, whole);
    });
}

#[test]
fn unpack_restores_exactly_datatype_bytes() {
    cases(0xD7A0_0006, 256, |rng| {
        let m = model(rng);
        let count = rng.range_u64(1, 3);
        let (base, len) = buffer_for(&m, count);
        // Self-overlapping typemaps are legal to send but erroneous to
        // receive into (MPI-1 §3.12.5); the round-trip property only
        // holds for non-overlapping layouts.
        let ext = m.ty.extent();
        let mut positions: Vec<i64> = (0..count as i64)
            .flat_map(|i| m.bytes.iter().map(move |&b| i * ext + b))
            .collect();
        let total = positions.len();
        positions.sort_unstable();
        positions.dedup();
        if positions.len() != total {
            return; // overlapping layout: skip this case
        }

        let seg = Segment::new(&m.ty, count);
        let n = seg.total_bytes();
        let stream: Vec<u8> = (0..n).map(|i| (i % 241) as u8).collect();
        let mut buf = vec![0xEEu8; len];
        seg.unpack(0, n, &stream, &mut buf, base).unwrap();
        // Re-pack what we unpacked: must round-trip.
        let mut repacked = vec![0u8; n as usize];
        seg.pack(0, n, &buf, base, &mut repacked).unwrap();
        assert_eq!(repacked, stream);
        // Bytes outside the typemap are untouched.
        let mut touched = vec![false; len];
        seg.for_each_block(0, n, |off, l| {
            for p in off..off + l as i64 {
                touched[(base as i64 + p) as usize] = true;
            }
        })
        .unwrap();
        for (i, &t) in touched.iter().enumerate() {
            if !t {
                assert_eq!(buf[i], 0xEE, "byte {i} was touched");
            }
        }
    });
}

#[test]
fn layout_serialization_roundtrip() {
    cases(0xD7A0_0007, 256, |rng| {
        let m = model(rng);
        let f = m.ty.flat();
        let dec = FlatLayout::decode(&f.encode()).unwrap();
        assert_eq!(*f.as_ref(), dec);
    });
}

#[test]
fn block_stats_consistent() {
    cases(0xD7A0_0008, 256, |rng| {
        let m = model(rng);
        let count = rng.range_u64(1, 4);
        let s = m.ty.flat().stats(count);
        assert_eq!(s.total, count * m.ty.size());
        if s.count > 0 {
            assert!(s.min <= s.median && s.median <= s.max);
            assert!(s.mean >= s.min as f64 && s.mean <= s.max as f64);
        }
    });
}

#[test]
fn repeat_fast_paths_match_naive_collector() {
    cases(0xD7A0_0009, 512, |rng| {
        let m = model(rng);
        let count = rng.range_u64(0, 6);
        let f = m.ty.flat();
        assert_eq!(
            f.repeat(count),
            f.repeat_naive(count),
            "type {:?} count {count}",
            m.ty
        );
    });
}

#[test]
fn coalesced_and_naive_blocks_cover_identical_bytes() {
    cases(0xD7A0_000A, 256, |rng| {
        // The coalesced (merged) list and the naive unmerged emission
        // must describe exactly the same multiset of memory bytes, in
        // the same pack order.
        let m = model(rng);
        let count = rng.range_u64(1, 4);
        let seg = Segment::new(&m.ty, count);
        let mut naive: Vec<i64> = Vec::new();
        seg.for_each_block(0, seg.total_bytes(), |o, l| {
            naive.extend(o..o + l as i64);
        })
        .unwrap();
        let coalesced: Vec<i64> = seg
            .blocks()
            .iter()
            .flat_map(|&(o, l)| o..o + l as i64)
            .collect();
        assert_eq!(coalesced, naive);
    });
}

#[test]
fn wide_block_kernels_equal_naive_walk() {
    cases(0xD7A0_000C, 192, |rng| {
        // Shapes wide enough to engage the vectorized strided kernels
        // (blocks past the 32-byte SIMD threshold), with bases that
        // sweep every destination alignment class including odd ones.
        // The small trees in `model()` never reach these paths.
        let rows = rng.range_u64(1, 12);
        let cols = rng.range_u64(1, 40); // ×4 B → blocks up to 160 B
        let stride = (cols + rng.range_u64(0, 40)) as i64;
        let v = Datatype::vector(rows, cols, stride, &Datatype::int()).unwrap();
        let (ty, count) = match rng.range_u64(0, 3) {
            // Plain vector: ConstStride (or Contig when stride==cols).
            0 => (v, rng.range_u64(1, 3)),
            // Padded extent + repetition: TwoLevel.
            1 => {
                let pad = rng.range_i64(0, 64) * 4;
                let ty = Datatype::resized(&v, 0, v.extent() + pad).unwrap();
                (ty, rng.range_u64(2, 4))
            }
            // Vector-of-vector with its own outer stride: TwoLevel or
            // Generic depending on seam adjacency.
            _ => {
                let outer = v.extent() + rng.range_i64(0, 48) * 4;
                let ty = Datatype::hvector(rng.range_u64(1, 3), 1, outer, &v).unwrap();
                (ty, 1)
            }
        };
        let seg = Segment::new(&ty, count);
        let plan = TransferPlan::compile(&ty, count);
        let n = plan.total_bytes();
        let base = rng.range_usize(0, 65);
        let (_, max_end) = plan.envelope();
        let len = base + max_end as usize + 7;
        let buf: Vec<u8> = (0..len).map(|i| (i % 241) as u8).collect();

        // Pack: plan kernels must match the naive segment walk bit for
        // bit, whole-message and on partial ranges.
        let mut sa = vec![0u8; n as usize];
        let mut pa = vec![0u8; n as usize];
        seg.pack(0, n, &buf, base, &mut sa).unwrap();
        plan.pack(0, n, &buf, base, &mut pa).unwrap();
        assert_eq!(pa, sa, "pack diverged (kernel {:?})", plan.kernel());

        // Unpack: scatter the stream into two independent buffers; the
        // kernel path must leave them identical, gaps included.
        let mut ua = vec![0xEEu8; len];
        let mut ub = vec![0xEEu8; len];
        seg.unpack(0, n, &sa, &mut ua, base).unwrap();
        plan.unpack(0, n, &sa, &mut ub, base).unwrap();
        assert_eq!(ub, ua, "unpack diverged (kernel {:?})", plan.kernel());

        // Partial ranges resume mid-block and clip first/last blocks.
        for _ in 0..3 {
            let lo = rng.range_u64(0, n + 1);
            let hi = rng.range_u64(lo, n + 1);
            let mut sp = vec![0u8; (hi - lo) as usize];
            let mut pp = vec![0u8; (hi - lo) as usize];
            seg.pack(lo, hi, &buf, base, &mut sp).unwrap();
            plan.pack(lo, hi, &buf, base, &mut pp).unwrap();
            assert_eq!(pp, sp, "partial pack [{lo},{hi})");
            let mut up = vec![0xEEu8; len];
            let mut uq = vec![0xEEu8; len];
            seg.unpack(lo, hi, &sp, &mut up, base).unwrap();
            plan.unpack(lo, hi, &sp, &mut uq, base).unwrap();
            assert_eq!(uq, up, "partial unpack [{lo},{hi})");
        }
    });
}

#[test]
fn bench_shape_const_stride_equals_naive_walk() {
    // The hotpath benchmark shape: vector(128, 64, 4096, int) — 128
    // blocks of 256 B at a 16 KiB stride. Large enough that the AVX2
    // kernel's software prefetch runs several blocks ahead of the
    // copy; the walk must stay byte-identical to the naive segment
    // path at every destination alignment class.
    let ty = Datatype::vector(128, 64, 4096, &Datatype::int()).unwrap();
    let seg = Segment::new(&ty, 1);
    let plan = TransferPlan::compile(&ty, 1);
    let n = plan.total_bytes();
    let (_, max_end) = plan.envelope();
    for base in [0usize, 1, 31, 63] {
        let len = base + max_end as usize;
        let buf: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        let mut sa = vec![0u8; n as usize];
        let mut pa = vec![0u8; n as usize];
        seg.pack(0, n, &buf, base, &mut sa).unwrap();
        plan.pack(0, n, &buf, base, &mut pa).unwrap();
        assert_eq!(pa, sa, "pack diverged at base {base}");
        let mut ua = vec![0xEEu8; len];
        let mut ub = vec![0xEEu8; len];
        seg.unpack(0, n, &sa, &mut ua, base).unwrap();
        plan.unpack(0, n, &sa, &mut ub, base).unwrap();
        assert_eq!(ub, ua, "unpack diverged at base {base}");
    }
}

#[test]
fn transfer_plan_equals_segment_on_random_schedules() {
    cases(0xD7A0_000B, 256, |rng| {
        let m = model(rng);
        let count = rng.range_u64(1, 5);
        let seg = Segment::new(&m.ty, count);
        let plan = TransferPlan::compile(&m.ty, count);
        assert_eq!(plan.total_bytes(), seg.total_bytes());
        assert_eq!(plan.blocks(), seg.blocks().as_slice());
        let n = seg.total_bytes();
        // Random chunk schedule: blocks, counts, and pack bytes must be
        // bit-identical per chunk.
        let ncuts = rng.range_usize(0, 6);
        let mut points: Vec<u64> = (0..ncuts).map(|_| rng.range_u64(0, n + 1)).collect();
        points.push(0);
        points.push(n);
        points.sort_unstable();
        let (base, len) = buffer_for(&m, count.max(1));
        let buf: Vec<u8> = (0..len).map(|i| (i % 239) as u8).collect();
        for w in points.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            let mut sb = Vec::new();
            seg.for_each_block(lo, hi, |o, l| sb.push((o, l))).unwrap();
            let mut pb = Vec::new();
            plan.for_each_block(lo, hi, |o, l| pb.push((o, l))).unwrap();
            assert_eq!(pb, sb, "blocks differ on [{lo},{hi})");
            assert_eq!(
                plan.block_count_in(lo, hi).unwrap(),
                seg.block_count_in(lo, hi).unwrap()
            );
            let mut sa = vec![0u8; (hi - lo) as usize];
            let mut pa = vec![0u8; (hi - lo) as usize];
            let se = seg.pack(lo, hi, &buf, base, &mut sa);
            let pe = plan.pack(lo, hi, &buf, base, &mut pa);
            assert_eq!(se.is_ok(), pe.is_ok());
            if se.is_ok() {
                assert_eq!(pa, sa);
            }
        }
    });
}
