//! Segments: partial pack/unpack of datatype messages.
//!
//! A [`Segment`] pairs a datatype with an instance count and exposes the
//! message as a linear *stream* of `count * size` bytes. Any byte range
//! of the stream can be packed out of (or unpacked into) the user buffer
//! independently — the partial datatype processing of §4.3.1 that
//! BC-SPUP and segment unpack in RWG-UP are built on.
//!
//! This module operates on plain byte slices; the MPI runtime adapts it
//! to simulated address spaces. `buf_base` is the slice index of the
//! element with datatype offset 0 (needed because MPI displacements may
//! be negative).

use crate::typ::Datatype;
use std::fmt;
use std::sync::Arc;

/// Errors from segment pack/unpack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentError {
    /// A datatype block fell outside the provided buffer slice.
    OutOfBounds {
        /// Offending block offset (relative to datatype origin).
        offset: i64,
        /// Offending block length.
        len: u64,
    },
    /// The contiguous stream slice had the wrong length for the range.
    StreamLenMismatch {
        /// Expected `hi - lo`.
        expected: u64,
        /// Provided slice length.
        got: usize,
    },
    /// `lo..hi` exceeds the message stream.
    RangeOutOfBounds {
        /// Requested range end.
        hi: u64,
        /// Stream size.
        size: u64,
    },
}

impl fmt::Display for SegmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentError::OutOfBounds { offset, len } => {
                write!(f, "datatype block ({offset}, {len}) outside user buffer")
            }
            SegmentError::StreamLenMismatch { expected, got } => {
                write!(f, "stream slice length {got}, expected {expected}")
            }
            SegmentError::RangeOutOfBounds { hi, size } => {
                write!(f, "stream range end {hi} beyond message size {size}")
            }
        }
    }
}

impl std::error::Error for SegmentError {}

/// A packable view over `count` instances of a datatype.
#[derive(Clone)]
pub struct Segment {
    ty: Datatype,
    dl: Arc<crate::dataloop::Dataloop>,
    count: u64,
    inst_size: u64,
    extent: i64,
}

impl fmt::Debug for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Segment")
            .field("count", &self.count)
            .field("inst_size", &self.inst_size)
            .field("extent", &self.extent)
            .finish()
    }
}

impl Segment {
    /// Creates a segment over `count` instances of `ty`.
    pub fn new(ty: &Datatype, count: u64) -> Self {
        Self {
            dl: ty.dataloop().clone(),
            ty: ty.clone(),
            count,
            inst_size: ty.size(),
            extent: ty.extent(),
        }
    }

    /// The datatype this segment walks.
    pub fn datatype(&self) -> &Datatype {
        &self.ty
    }

    /// Instance count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Total stream bytes (`count * size`).
    pub fn total_bytes(&self) -> u64 {
        self.count * self.inst_size
    }

    /// Enumerates contiguous memory blocks for stream range `[lo, hi)`,
    /// as `(offset relative to buffer address, len)` in pack order.
    pub fn for_each_block<F: FnMut(i64, u64)>(
        &self,
        lo: u64,
        hi: u64,
        mut f: F,
    ) -> Result<(), SegmentError> {
        if hi > self.total_bytes() || lo > hi {
            return Err(SegmentError::RangeOutOfBounds {
                hi,
                size: self.total_bytes(),
            });
        }
        if lo == hi || self.inst_size == 0 {
            return Ok(());
        }
        let first = lo / self.inst_size;
        let last = (hi - 1) / self.inst_size;
        for i in first..=last {
            let base = i as i64 * self.extent;
            let clo = lo.saturating_sub(i * self.inst_size).min(self.inst_size);
            let chi = (hi - i * self.inst_size).min(self.inst_size);
            self.dl.emit(clo, chi, base, &mut f);
        }
        Ok(())
    }

    /// Counts `(blocks, bytes)` in a stream range — inputs to the host
    /// copy cost model.
    pub fn block_count_in(&self, lo: u64, hi: u64) -> Result<(usize, u64), SegmentError> {
        let mut blocks = 0usize;
        let mut bytes = 0u64;
        self.for_each_block(lo, hi, |_, l| {
            blocks += 1;
            bytes += l;
        })?;
        Ok((blocks, bytes))
    }

    /// Flattened block list for the whole message (pack order, merged
    /// across instances when dense).
    pub fn blocks(&self) -> Vec<(i64, u64)> {
        self.ty.flat().repeat(self.count)
    }

    /// Packs stream range `[lo, hi)` from the user buffer into `out`.
    ///
    /// `buf_base` is the index in `buf` of datatype offset 0;
    /// `out.len()` must equal `hi - lo`.
    ///
    /// ```
    /// use ibdt_datatype::{Datatype, Segment};
    /// // Two 4-byte blocks, 8 bytes apart.
    /// let t = Datatype::vector(2, 1, 2, &Datatype::int()).unwrap();
    /// let seg = Segment::new(&t, 1);
    /// let buf: Vec<u8> = (0..16).collect();
    /// let mut out = vec![0u8; 8];
    /// seg.pack(0, 8, &buf, 0, &mut out).unwrap();
    /// assert_eq!(out, [0, 1, 2, 3, 8, 9, 10, 11]);
    /// // Partial processing: any sub-range independently (§4.3.1).
    /// let mut piece = vec![0u8; 3];
    /// seg.pack(2, 5, &buf, 0, &mut piece).unwrap();
    /// assert_eq!(piece, [2, 3, 8]);
    /// ```
    pub fn pack(
        &self,
        lo: u64,
        hi: u64,
        buf: &[u8],
        buf_base: usize,
        out: &mut [u8],
    ) -> Result<(), SegmentError> {
        if out.len() as u64 != hi - lo {
            return Err(SegmentError::StreamLenMismatch {
                expected: hi - lo,
                got: out.len(),
            });
        }
        let mut cursor = 0usize;
        let mut err = None;
        self.for_each_block(lo, hi, |off, len| {
            if err.is_some() {
                return;
            }
            match slice_at(buf, buf_base, off, len) {
                Some(src) => {
                    out[cursor..cursor + len as usize].copy_from_slice(src);
                    cursor += len as usize;
                }
                None => err = Some(SegmentError::OutOfBounds { offset: off, len }),
            }
        })?;
        err.map_or(Ok(()), Err)
    }

    /// Unpacks stream range `[lo, hi)` from `input` into the user
    /// buffer. Mirror of [`Self::pack`].
    pub fn unpack(
        &self,
        lo: u64,
        hi: u64,
        input: &[u8],
        buf: &mut [u8],
        buf_base: usize,
    ) -> Result<(), SegmentError> {
        if input.len() as u64 != hi - lo {
            return Err(SegmentError::StreamLenMismatch {
                expected: hi - lo,
                got: input.len(),
            });
        }
        let mut cursor = 0usize;
        let mut err = None;
        self.for_each_block(lo, hi, |off, len| {
            if err.is_some() {
                return;
            }
            match slice_index(buf.len(), buf_base, off, len) {
                Some(range) => {
                    buf[range].copy_from_slice(&input[cursor..cursor + len as usize]);
                    cursor += len as usize;
                }
                None => err = Some(SegmentError::OutOfBounds { offset: off, len }),
            }
        })?;
        err.map_or(Ok(()), Err)
    }
}

pub(crate) fn slice_index(
    buf_len: usize,
    base: usize,
    off: i64,
    len: u64,
) -> Option<std::ops::Range<usize>> {
    let start = (base as i128) + off as i128;
    let end = start + len as i128;
    if start < 0 || end > buf_len as i128 {
        return None;
    }
    Some(start as usize..end as usize)
}

pub(crate) fn slice_at(buf: &[u8], base: usize, off: i64, len: u64) -> Option<&[u8]> {
    slice_index(buf.len(), base, off, len).map(|r| &buf[r])
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The user buffer: bytes 0..=255 repeating.
    fn filled(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn pack_whole_vector() {
        let t = Datatype::vector(3, 1, 2, &Datatype::int()).unwrap();
        let seg = Segment::new(&t, 1);
        let buf = filled(64);
        let mut out = vec![0u8; 12];
        seg.pack(0, 12, &buf, 0, &mut out).unwrap();
        let expect: Vec<u8> = [0..4, 8..12, 16..20]
            .into_iter()
            .flat_map(|r| buf[r].to_vec())
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn unpack_inverts_pack() {
        let t = Datatype::vector(4, 3, 7, &Datatype::int()).unwrap();
        let seg = Segment::new(&t, 2);
        let buf = filled(512);
        let n = seg.total_bytes();
        let mut packed = vec![0u8; n as usize];
        seg.pack(0, n, &buf, 0, &mut packed).unwrap();
        let mut restored = vec![0u8; 512];
        seg.unpack(0, n, &packed, &mut restored, 0).unwrap();
        // Restored buffer equals original at all datatype positions.
        seg.for_each_block(0, n, |off, len| {
            let r = off as usize..(off + len as i64) as usize;
            assert_eq!(&restored[r.clone()], &buf[r]);
        })
        .unwrap();
    }

    #[test]
    fn segmented_pack_equals_whole_pack() {
        let t = Datatype::hindexed(&[(3, 0), (1, 40), (5, 100)], &Datatype::int()).unwrap();
        let seg = Segment::new(&t, 3);
        let buf = filled(1024);
        let n = seg.total_bytes() as usize;
        let mut whole = vec![0u8; n];
        seg.pack(0, n as u64, &buf, 0, &mut whole).unwrap();
        // Pack in ragged pieces.
        for chunk in [1usize, 5, 7, 13, 64] {
            let mut pieces = vec![0u8; n];
            let mut lo = 0usize;
            while lo < n {
                let hi = (lo + chunk).min(n);
                seg.pack(lo as u64, hi as u64, &buf, 0, &mut pieces[lo..hi])
                    .unwrap();
                lo = hi;
            }
            assert_eq!(pieces, whole, "chunk={chunk}");
        }
    }

    #[test]
    fn segmented_unpack_equals_whole_unpack() {
        let t = Datatype::vector(5, 2, 9, &Datatype::int()).unwrap();
        let seg = Segment::new(&t, 2);
        let n = seg.total_bytes() as usize;
        let stream = filled(n);
        let mut whole = vec![0u8; 512];
        seg.unpack(0, n as u64, &stream, &mut whole, 0).unwrap();
        let mut pieces = vec![0u8; 512];
        let mut lo = 0usize;
        for chunk in [3usize, 11, 17].iter().cycle() {
            if lo >= n {
                break;
            }
            let hi = (lo + chunk).min(n);
            seg.unpack(lo as u64, hi as u64, &stream[lo..hi], &mut pieces, 0)
                .unwrap();
            lo = hi;
        }
        assert_eq!(pieces, whole);
    }

    #[test]
    fn negative_offsets_need_base() {
        let t = Datatype::hindexed(&[(1, -8), (1, 0)], &Datatype::int()).unwrap();
        let seg = Segment::new(&t, 1);
        let buf = filled(64);
        let mut out = vec![0u8; 8];
        // base 0 would index at -8: error.
        assert!(matches!(
            seg.pack(0, 8, &buf, 0, &mut out).unwrap_err(),
            SegmentError::OutOfBounds { .. }
        ));
        seg.pack(0, 8, &buf, 16, &mut out).unwrap();
        assert_eq!(&out[0..4], &buf[8..12]);
        assert_eq!(&out[4..8], &buf[16..20]);
    }

    #[test]
    fn wrong_out_len_rejected() {
        let t = Datatype::int();
        let seg = Segment::new(&t, 1);
        let buf = filled(8);
        let mut out = vec![0u8; 3];
        assert!(matches!(
            seg.pack(0, 4, &buf, 0, &mut out).unwrap_err(),
            SegmentError::StreamLenMismatch { .. }
        ));
    }

    #[test]
    fn range_beyond_stream_rejected() {
        let t = Datatype::int();
        let seg = Segment::new(&t, 2);
        assert!(matches!(
            seg.block_count_in(0, 9).unwrap_err(),
            SegmentError::RangeOutOfBounds { .. }
        ));
    }

    #[test]
    fn block_count_matches_flatten() {
        let t = Datatype::vector(128, 4, 4096, &Datatype::int()).unwrap();
        let seg = Segment::new(&t, 1);
        let (blocks, bytes) = seg.block_count_in(0, seg.total_bytes()).unwrap();
        assert_eq!(blocks, 128);
        assert_eq!(bytes, 128 * 16);
    }

    #[test]
    fn multi_instance_blocks_cross_boundary() {
        // Contiguous instances merge across the instance boundary.
        let t = Datatype::contiguous(4, &Datatype::int()).unwrap();
        let seg = Segment::new(&t, 3);
        assert_eq!(seg.blocks(), vec![(0, 48)]);
        // but for_each_block without merging reports per instance
        let (blocks, bytes) = seg.block_count_in(0, 48).unwrap();
        assert_eq!(bytes, 48);
        assert!(blocks <= 3);
    }

    #[test]
    fn zero_size_type_packs_nothing() {
        let t = Datatype::contiguous(0, &Datatype::int()).unwrap();
        let seg = Segment::new(&t, 5);
        assert_eq!(seg.total_bytes(), 0);
        let buf = filled(8);
        let mut out = vec![];
        seg.pack(0, 0, &buf, 0, &mut out).unwrap();
    }
}
