//! Primitive (basic) MPI datatypes.

/// A primitive MPI datatype, the leaves of every derived type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Primitive {
    /// `MPI_BYTE` — 1 byte.
    Byte,
    /// `MPI_CHAR` — 1 byte.
    Char,
    /// `MPI_SHORT` — 2 bytes.
    Short,
    /// `MPI_INT` — 4 bytes.
    Int,
    /// `MPI_LONG` / `MPI_LONG_LONG` — 8 bytes.
    Long,
    /// `MPI_FLOAT` — 4 bytes.
    Float,
    /// `MPI_DOUBLE` — 8 bytes.
    Double,
}

impl Primitive {
    /// Size in bytes. Primitives have extent == size and lb == 0.
    pub const fn size(self) -> u64 {
        match self {
            Primitive::Byte | Primitive::Char => 1,
            Primitive::Short => 2,
            Primitive::Int | Primitive::Float => 4,
            Primitive::Long | Primitive::Double => 8,
        }
    }

    /// All primitives, for exhaustive tests.
    pub const ALL: [Primitive; 7] = [
        Primitive::Byte,
        Primitive::Char,
        Primitive::Short,
        Primitive::Int,
        Primitive::Long,
        Primitive::Float,
        Primitive::Double,
    ];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(Primitive::Byte.size(), 1);
        assert_eq!(Primitive::Char.size(), 1);
        assert_eq!(Primitive::Short.size(), 2);
        assert_eq!(Primitive::Int.size(), 4);
        assert_eq!(Primitive::Float.size(), 4);
        assert_eq!(Primitive::Long.size(), 8);
        assert_eq!(Primitive::Double.size(), 8);
    }

    #[test]
    fn all_is_exhaustive() {
        assert_eq!(Primitive::ALL.len(), 7);
        for p in Primitive::ALL {
            assert!(p.size() >= 1);
        }
    }
}
