//! Compiled transfer plans: the amortized form of a (datatype, count)
//! pair.
//!
//! A [`TransferPlan`] is compiled once per message shape and then shared
//! (`Arc`) across every chunk, segment, and descriptor build of that
//! message — the host-side analogue of §5.4.2's wire-level datatype
//! cache. Where [`Segment`](crate::Segment) re-walks the dataloop tree
//! on every call, a plan precomputes:
//!
//! * the **unmerged per-instance run list** — exactly the blocks
//!   `Dataloop::emit` would produce for one full instance, with an
//!   exclusive prefix-sum table over stream offsets, so any `[lo, hi)`
//!   chunk resumes in `O(log runs)` instead of `O(depth + runs)`;
//! * the **merged whole-message block list** — identical to
//!   `FlatLayout::repeat(count)`, materialized once instead of per
//!   descriptor build;
//! * totals: stream bytes, merged block count, [`BlockStats`], and the
//!   largest contiguous run (the max single-SGE burst).
//!
//! Equivalence with [`Segment`] is load-bearing: the discrete-event
//! cost model charges host copy time per *unmerged* block, so a plan
//! must enumerate bit-for-bit the same blocks in the same order. This
//! holds structurally — `Dataloop::emit` over a sub-range equals the
//! clip of its full-range emission (leaves emit clipped fragments in
//! identical order) — and is pinned down by the tests at the bottom of
//! this file plus `tests/proptests.rs`.

use crate::dataloop::Dataloop;
use crate::flat::BlockStats;
use crate::kernel::{copy_block, prefetch_block, CopyKernel};
#[cfg(target_arch = "x86_64")]
use crate::kernel::{copy_strided_simd, simd_strided_ok};
use crate::segment::{slice_at, slice_index, SegmentError};
use crate::typ::Datatype;
use std::fmt;

/// A compiled, immutable transfer plan for `count` instances of a
/// datatype. Cheap to share behind an `Arc`; all methods take `&self`.
#[derive(Clone)]
pub struct TransferPlan {
    ty: Datatype,
    count: u64,
    inst_size: u64,
    extent: i64,
    total_bytes: u64,
    /// Unmerged runs of one instance, in pack order, relative to the
    /// instance origin. Exactly `dl.emit(0, inst_size, 0)`.
    inst_runs: Vec<(i64, u64)>,
    /// Exclusive prefix sums of `inst_runs` lengths;
    /// `inst_prefix[i]` is the stream offset where run `i` begins.
    /// Length = `inst_runs.len() + 1`, last element = `inst_size`.
    inst_prefix: Vec<u64>,
    /// Merged whole-message blocks: identical to
    /// `ty.flat().repeat(count)`.
    merged: Vec<(i64, u64)>,
    /// Exclusive prefix sums of merged block lengths; length
    /// `merged.len() + 1`, last element = `total_bytes`. Lets any
    /// `[lo, hi)` copy resume mid-list in `O(log blocks)`.
    merged_prefix: Vec<u64>,
    /// Copy strategy classified from `merged` at compile time.
    kernel: CopyKernel,
    /// Smallest block offset over `merged` (0 when empty).
    min_off: i128,
    /// Largest block end (`off + len`) over `merged` (0 when empty).
    max_end: i128,
    stats: BlockStats,
    max_burst: u64,
}

impl fmt::Debug for TransferPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TransferPlan")
            .field("count", &self.count)
            .field("inst_size", &self.inst_size)
            .field("extent", &self.extent)
            .field("runs_per_instance", &self.inst_runs.len())
            .field("merged_blocks", &self.merged.len())
            .finish()
    }
}

impl TransferPlan {
    /// Compiles a plan for `count` instances of `ty`.
    pub fn compile(ty: &Datatype, count: u64) -> TransferPlan {
        let dl: &Dataloop = ty.dataloop();
        let inst_size = ty.size();
        let mut inst_runs = Vec::new();
        if inst_size > 0 {
            dl.emit(0, inst_size, 0, &mut |o, l| inst_runs.push((o, l)));
        }
        let mut inst_prefix = Vec::with_capacity(inst_runs.len() + 1);
        let mut acc = 0u64;
        inst_prefix.push(0);
        for &(_, l) in &inst_runs {
            acc += l;
            inst_prefix.push(acc);
        }
        debug_assert_eq!(acc, inst_size);
        let merged = ty.flat().repeat(count);
        let stats = BlockStats::from_blocks(&merged);
        let mut merged_prefix = Vec::with_capacity(merged.len() + 1);
        let mut macc = 0u64;
        merged_prefix.push(0);
        let mut min_off = 0i128;
        let mut max_end = 0i128;
        for (i, &(o, l)) in merged.iter().enumerate() {
            macc += l;
            merged_prefix.push(macc);
            let (s, e) = (o as i128, o as i128 + l as i128);
            if i == 0 {
                min_off = s;
                max_end = e;
            } else {
                min_off = min_off.min(s);
                max_end = max_end.max(e);
            }
        }
        debug_assert_eq!(macc, count * inst_size);
        let kernel = CopyKernel::select(&merged);
        TransferPlan {
            ty: ty.clone(),
            count,
            inst_size,
            extent: ty.extent(),
            total_bytes: count * inst_size,
            inst_runs,
            inst_prefix,
            max_burst: stats.max,
            merged,
            merged_prefix,
            kernel,
            min_off,
            max_end,
            stats,
        }
    }

    /// The datatype this plan was compiled from.
    pub fn datatype(&self) -> &Datatype {
        &self.ty
    }

    /// Instance count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Total stream bytes (`count * size`).
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Unmerged contiguous runs per instance.
    pub fn runs_per_instance(&self) -> usize {
        self.inst_runs.len()
    }

    /// Merged whole-message block list — identical to
    /// `Segment::blocks()` / `FlatLayout::repeat(count)`, but
    /// materialized once at compile time.
    pub fn blocks(&self) -> &[(i64, u64)] {
        &self.merged
    }

    /// Precomputed block statistics over the merged list (same as
    /// `flat().stats(count)`).
    pub fn stats(&self) -> BlockStats {
        self.stats
    }

    /// Largest contiguous merged run — the widest single-SGE burst any
    /// descriptor built from this plan can carry.
    pub fn max_burst(&self) -> u64 {
        self.max_burst
    }

    /// Index of the first per-instance run overlapping intra-instance
    /// stream offset `off` — the O(log runs) resume point for a chunk
    /// boundary. `off` must be `< inst_size`.
    pub fn resume_index(&self, off: u64) -> usize {
        let n = self.inst_runs.len();
        self.inst_prefix[1..=n].partition_point(|&end| end <= off)
    }

    /// Enumerates contiguous memory blocks for stream range `[lo, hi)`,
    /// as `(offset relative to buffer address, len)` in pack order.
    ///
    /// Bit-identical to [`Segment::for_each_block`](crate::Segment):
    /// same blocks, same order, unmerged across runs and instances.
    pub fn for_each_block<F: FnMut(i64, u64)>(
        &self,
        lo: u64,
        hi: u64,
        mut f: F,
    ) -> Result<(), SegmentError> {
        if hi > self.total_bytes || lo > hi {
            return Err(SegmentError::RangeOutOfBounds {
                hi,
                size: self.total_bytes,
            });
        }
        if lo == hi || self.inst_size == 0 {
            return Ok(());
        }
        let first = lo / self.inst_size;
        let last = (hi - 1) / self.inst_size;
        for i in first..=last {
            let base = i as i64 * self.extent;
            let clo = lo.saturating_sub(i * self.inst_size).min(self.inst_size);
            let chi = (hi - i * self.inst_size).min(self.inst_size);
            self.emit_instance(clo, chi, base, &mut f);
        }
        Ok(())
    }

    /// Emits clipped runs of one instance for intra-instance stream
    /// range `[clo, chi)`, resuming by prefix search.
    fn emit_instance<F: FnMut(i64, u64)>(&self, clo: u64, chi: u64, base: i64, f: &mut F) {
        if clo >= chi {
            return;
        }
        let start = self.resume_index(clo);
        for k in start..self.inst_runs.len() {
            let rs = self.inst_prefix[k];
            if rs >= chi {
                break;
            }
            let re = self.inst_prefix[k + 1];
            let (off, _) = self.inst_runs[k];
            let s = clo.max(rs);
            let e = chi.min(re);
            f(base + off + (s - rs) as i64, e - s);
        }
    }

    /// Counts `(blocks, bytes)` in a stream range without enumerating —
    /// O(log runs) regardless of range width. Returns exactly what
    /// `Segment::block_count_in` returns.
    pub fn block_count_in(&self, lo: u64, hi: u64) -> Result<(usize, u64), SegmentError> {
        if hi > self.total_bytes || lo > hi {
            return Err(SegmentError::RangeOutOfBounds {
                hi,
                size: self.total_bytes,
            });
        }
        if lo == hi || self.inst_size == 0 {
            return Ok((0, 0));
        }
        let first = lo / self.inst_size;
        let last = (hi - 1) / self.inst_size;
        let blocks = if first == last {
            let clo = lo - first * self.inst_size;
            let chi = hi - first * self.inst_size;
            self.runs_in(clo, chi)
        } else {
            let head = self.runs_in(lo - first * self.inst_size, self.inst_size);
            let tail = self.runs_in(0, hi - last * self.inst_size);
            let middle = (last - first - 1) as usize * self.inst_runs.len();
            head + middle + tail
        };
        Ok((blocks, hi - lo))
    }

    /// Number of per-instance runs overlapping intra-instance range
    /// `[clo, chi)`.
    fn runs_in(&self, clo: u64, chi: u64) -> usize {
        if clo >= chi {
            return 0;
        }
        let n = self.inst_runs.len();
        let a = self.inst_prefix[1..=n].partition_point(|&end| end <= clo);
        let b = self.inst_prefix[..n].partition_point(|&start| start < chi);
        b - a
    }

    /// The copy kernel classified from the merged block list at
    /// compile time.
    pub fn kernel(&self) -> CopyKernel {
        self.kernel
    }

    /// Smallest `[lo, hi)` window of the user buffer, relative to the
    /// datatype origin, covering every merged block. Lets callers hand
    /// [`Self::pack`]/[`Self::unpack`] a view no wider than the bytes
    /// actually touched (e.g. so address-space dirty tracking stays
    /// tight) instead of a whole-memory slice.
    pub fn envelope(&self) -> (i128, i128) {
        (self.min_off, self.max_end)
    }

    /// True when every merged block of the whole message lands inside
    /// a buffer of `buf_len` bytes with datatype origin at `base` —
    /// the single upfront check that licenses the unchecked kernels.
    fn bounds_ok(&self, buf_len: usize, base: usize) -> bool {
        base <= i64::MAX as usize
            && base as i128 + self.min_off >= 0
            && base as i128 + self.max_end <= buf_len as i128
    }

    /// Packs stream range `[lo, hi)` from the user buffer into `out`.
    /// Same contract as [`Segment::pack`](crate::Segment::pack).
    pub fn pack(
        &self,
        lo: u64,
        hi: u64,
        buf: &[u8],
        buf_base: usize,
        out: &mut [u8],
    ) -> Result<(), SegmentError> {
        if out.len() as u64 != hi - lo {
            return Err(SegmentError::StreamLenMismatch {
                expected: hi - lo,
                got: out.len(),
            });
        }
        if hi > self.total_bytes || lo > hi {
            return Err(SegmentError::RangeOutOfBounds {
                hi,
                size: self.total_bytes,
            });
        }
        if lo == hi {
            return Ok(());
        }
        if self.bounds_ok(buf.len(), buf_base) {
            // Every block of the whole message is in bounds, so the
            // kernels can run without per-block checks.
            unsafe {
                self.exec::<true>(
                    lo,
                    hi,
                    buf.as_ptr() as *mut u8,
                    buf_base as i64,
                    out.as_mut_ptr(),
                )
            };
            return Ok(());
        }
        self.pack_checked(lo, hi, buf, buf_base, out)
    }

    /// Per-block checked pack — the pre-kernel path, kept for buffers
    /// where some block of the *whole message* is out of bounds even
    /// though the requested range may not be. Error reporting is
    /// bit-identical to [`Segment::pack`](crate::Segment::pack).
    fn pack_checked(
        &self,
        lo: u64,
        hi: u64,
        buf: &[u8],
        buf_base: usize,
        out: &mut [u8],
    ) -> Result<(), SegmentError> {
        let mut cursor = 0usize;
        let mut err = None;
        self.for_each_block(lo, hi, |off, len| {
            if err.is_some() {
                return;
            }
            match slice_at(buf, buf_base, off, len) {
                Some(src) => {
                    out[cursor..cursor + len as usize].copy_from_slice(src);
                    cursor += len as usize;
                }
                None => err = Some(SegmentError::OutOfBounds { offset: off, len }),
            }
        })?;
        err.map_or(Ok(()), Err)
    }

    /// Unpacks stream range `[lo, hi)` from `input` into the user
    /// buffer. Same contract as [`Segment::unpack`](crate::Segment::unpack).
    pub fn unpack(
        &self,
        lo: u64,
        hi: u64,
        input: &[u8],
        buf: &mut [u8],
        buf_base: usize,
    ) -> Result<(), SegmentError> {
        if input.len() as u64 != hi - lo {
            return Err(SegmentError::StreamLenMismatch {
                expected: hi - lo,
                got: input.len(),
            });
        }
        if hi > self.total_bytes || lo > hi {
            return Err(SegmentError::RangeOutOfBounds {
                hi,
                size: self.total_bytes,
            });
        }
        if lo == hi {
            return Ok(());
        }
        if self.bounds_ok(buf.len(), buf_base) {
            unsafe {
                self.exec::<false>(
                    lo,
                    hi,
                    buf.as_mut_ptr(),
                    buf_base as i64,
                    input.as_ptr() as *mut u8,
                )
            };
            return Ok(());
        }
        self.unpack_checked(lo, hi, input, buf, buf_base)
    }

    /// Per-block checked unpack; see [`Self::pack_checked`].
    fn unpack_checked(
        &self,
        lo: u64,
        hi: u64,
        input: &[u8],
        buf: &mut [u8],
        buf_base: usize,
    ) -> Result<(), SegmentError> {
        let mut cursor = 0usize;
        let mut err = None;
        self.for_each_block(lo, hi, |off, len| {
            if err.is_some() {
                return;
            }
            match slice_index(buf.len(), buf_base, off, len) {
                Some(range) => {
                    buf[range].copy_from_slice(&input[cursor..cursor + len as usize]);
                    cursor += len as usize;
                }
                None => err = Some(SegmentError::OutOfBounds { offset: off, len }),
            }
        })?;
        err.map_or(Ok(()), Err)
    }

    /// Runs the compiled kernel over stream range `[lo, hi)` of the
    /// merged block list. `PACK` copies user → stream; `!PACK` copies
    /// stream → user. The stream cursor starts at `stream` (i.e. the
    /// caller already sliced the stream to the range).
    ///
    /// # Safety
    /// Caller must guarantee `bounds_ok(user_len, base)`, that `user`
    /// points at that buffer, that `stream` is valid for `hi - lo`
    /// bytes, and that `lo < hi <= total_bytes`. The stream and user
    /// buffers must not overlap.
    unsafe fn exec<const PACK: bool>(
        &self,
        lo: u64,
        hi: u64,
        user: *mut u8,
        base: i64,
        stream: *mut u8,
    ) {
        #[inline(always)]
        unsafe fn mov<const PACK: bool>(user: *mut u8, stream: *mut u8, len: usize) {
            if PACK {
                copy_block(user as *const u8, stream, len);
            } else {
                copy_block(stream as *const u8, user, len);
            }
        }
        if lo == 0 && hi == self.total_bytes {
            // Whole message: shape-specialized loops.
            match self.kernel {
                CopyKernel::Contig => {
                    let (off, len) = self.merged[0];
                    mov::<PACK>(user.add((base + off) as usize), stream, len as usize);
                }
                CopyKernel::ConstStride { block, stride } => {
                    let b = block as usize;
                    let mut uoff = base + self.merged[0].0;
                    let mut s = stream;
                    // Wide blocks go through the AVX2 strided loop:
                    // `memcpy` dispatch per block and split-line wide
                    // stores are what make strided unpack ~2× slower
                    // than pack otherwise.
                    #[cfg(target_arch = "x86_64")]
                    if copy_strided_simd::<PACK>(
                        user.offset(uoff as isize),
                        s,
                        b,
                        stride,
                        self.merged.len(),
                    ) {
                        return;
                    }
                    // Prefetch whole blocks a few strides ahead:
                    // wide-stride blocks miss cache on every iteration
                    // otherwise, and the strided side is the
                    // bottleneck in both directions (with write intent
                    // on unpack, where the miss is a store RFO).
                    let pf = 4 * stride;
                    for _ in 0..self.merged.len() {
                        prefetch_block::<PACK>(user.wrapping_offset((uoff + pf) as isize), b);
                        mov::<PACK>(user.add(uoff as usize), s, b);
                        uoff += stride;
                        s = s.add(b);
                    }
                }
                CopyKernel::TwoLevel {
                    block,
                    inner_n,
                    inner_stride,
                    outer_stride,
                } => {
                    let b = block as usize;
                    let outer_n = self.merged.len() / inner_n as usize;
                    let mut goff = base + self.merged[0].0;
                    let mut s = stream;
                    // Each outer group is a constant-stride run; reuse
                    // the AVX2 strided loop per group.
                    #[cfg(target_arch = "x86_64")]
                    if simd_strided_ok(b) {
                        for _ in 0..outer_n {
                            copy_strided_simd::<PACK>(
                                user.offset(goff as isize),
                                s,
                                b,
                                inner_stride,
                                inner_n as usize,
                            );
                            goff += outer_stride;
                            s = s.add(inner_n as usize * b);
                        }
                        return;
                    }
                    let pf = 4 * inner_stride;
                    for _ in 0..outer_n {
                        let mut uoff = goff;
                        for _ in 0..inner_n {
                            prefetch_block::<PACK>(user.wrapping_offset((uoff + pf) as isize), b);
                            mov::<PACK>(user.add(uoff as usize), s, b);
                            uoff += inner_stride;
                            s = s.add(b);
                        }
                        goff += outer_stride;
                    }
                }
                CopyKernel::Generic => {
                    let mut s = stream;
                    for &(off, len) in &self.merged {
                        mov::<PACK>(user.add((base + off) as usize), s, len as usize);
                        s = s.add(len as usize);
                    }
                }
            }
            return;
        }
        // Partial range: resume mid-list by prefix search, clip the
        // first and last blocks. Still the merged layout — the same
        // blocks a descriptor build would enumerate.
        let n = self.merged.len();
        let mut i = self.merged_prefix[1..=n].partition_point(|&end| end <= lo);
        let mut s = stream;
        while i < n {
            let ps = self.merged_prefix[i];
            if ps >= hi {
                break;
            }
            let pe = self.merged_prefix[i + 1];
            let off = self.merged[i].0;
            let a = lo.max(ps);
            let e = hi.min(pe);
            let len = (e - a) as usize;
            mov::<PACK>(user.add((base + off + (a - ps) as i64) as usize), s, len);
            s = s.add(len);
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::Segment;

    fn collect_seg(seg: &Segment, lo: u64, hi: u64) -> Vec<(i64, u64)> {
        let mut v = Vec::new();
        seg.for_each_block(lo, hi, |o, l| v.push((o, l))).unwrap();
        v
    }

    fn collect_plan(plan: &TransferPlan, lo: u64, hi: u64) -> Vec<(i64, u64)> {
        let mut v = Vec::new();
        plan.for_each_block(lo, hi, |o, l| v.push((o, l))).unwrap();
        v
    }

    fn sample_types() -> Vec<(Datatype, u64)> {
        vec![
            (Datatype::int(), 7),
            (Datatype::contiguous(4, &Datatype::int()).unwrap(), 3),
            (Datatype::vector(3, 2, 5, &Datatype::int()).unwrap(), 2),
            (Datatype::vector(2, 1, 2, &Datatype::int()).unwrap(), 4),
            (Datatype::vector(3, 1, -2, &Datatype::int()).unwrap(), 2),
            (
                Datatype::hindexed(&[(3, 0), (1, 40), (5, 100)], &Datatype::int()).unwrap(),
                3,
            ),
            (
                Datatype::struct_(&[
                    (2, 0, Datatype::int()),
                    (1, 16, Datatype::double()),
                    (3, 32, Datatype::byte()),
                ])
                .unwrap(),
                2,
            ),
            (
                Datatype::resized(&Datatype::contiguous(1, &Datatype::int()).unwrap(), 0, 16)
                    .unwrap(),
                3,
            ),
            (
                Datatype::hvector(
                    2,
                    1,
                    100,
                    &Datatype::vector(2, 1, 2, &Datatype::int()).unwrap(),
                )
                .unwrap(),
                2,
            ),
            (Datatype::contiguous(0, &Datatype::int()).unwrap(), 5),
        ]
    }

    #[test]
    fn plan_blocks_match_segment_everywhere() {
        for (ty, count) in sample_types() {
            let seg = Segment::new(&ty, count);
            let plan = TransferPlan::compile(&ty, count);
            let n = seg.total_bytes();
            assert_eq!(plan.total_bytes(), n);
            // Whole range plus a dense sweep of sub-ranges.
            let mut ranges = vec![(0, n)];
            let step = (n / 7).max(1);
            let mut lo = 0;
            while lo < n {
                let hi = (lo + step).min(n);
                ranges.push((lo, hi));
                ranges.push((lo, n));
                ranges.push((0, hi));
                lo += step;
            }
            for (lo, hi) in ranges {
                assert_eq!(
                    collect_plan(&plan, lo, hi),
                    collect_seg(&seg, lo, hi),
                    "type {ty:?} count {count} range [{lo},{hi})"
                );
                assert_eq!(
                    plan.block_count_in(lo, hi).unwrap(),
                    seg.block_count_in(lo, hi).unwrap(),
                    "count mismatch for {ty:?} range [{lo},{hi})"
                );
            }
        }
    }

    #[test]
    fn plan_merged_matches_segment_blocks() {
        for (ty, count) in sample_types() {
            let seg = Segment::new(&ty, count);
            let plan = TransferPlan::compile(&ty, count);
            assert_eq!(plan.blocks(), seg.blocks().as_slice());
            let s = ty.flat().stats(count);
            assert_eq!(plan.stats().count, s.count);
            assert_eq!(plan.stats().total, s.total);
            assert_eq!(plan.max_burst(), s.max);
        }
    }

    #[test]
    fn plan_pack_unpack_match_segment() {
        let ty = Datatype::hindexed(&[(3, 0), (1, 40), (5, 100)], &Datatype::int()).unwrap();
        let seg = Segment::new(&ty, 3);
        let plan = TransferPlan::compile(&ty, 3);
        let buf: Vec<u8> = (0..1024).map(|i| (i % 251) as u8).collect();
        let n = seg.total_bytes() as usize;
        for chunk in [1usize, 5, 13, 64, n] {
            let mut a = vec![0u8; n];
            let mut b = vec![0u8; n];
            let mut lo = 0usize;
            while lo < n {
                let hi = (lo + chunk).min(n);
                seg.pack(lo as u64, hi as u64, &buf, 0, &mut a[lo..hi])
                    .unwrap();
                plan.pack(lo as u64, hi as u64, &buf, 0, &mut b[lo..hi])
                    .unwrap();
                lo = hi;
            }
            assert_eq!(a, b, "chunk={chunk}");
            let mut ua = vec![0u8; 1024];
            let mut ub = vec![0u8; 1024];
            seg.unpack(0, n as u64, &a, &mut ua, 0).unwrap();
            plan.unpack(0, n as u64, &b, &mut ub, 0).unwrap();
            assert_eq!(ua, ub);
        }
    }

    #[test]
    fn plan_error_cases_match_segment() {
        let ty = Datatype::int();
        let plan = TransferPlan::compile(&ty, 2);
        assert!(matches!(
            plan.block_count_in(0, 9).unwrap_err(),
            SegmentError::RangeOutOfBounds { .. }
        ));
        let buf = [0u8; 8];
        let mut out = [0u8; 3];
        assert!(matches!(
            plan.pack(0, 4, &buf, 0, &mut out).unwrap_err(),
            SegmentError::StreamLenMismatch { .. }
        ));
        // Negative displacement without base: OutOfBounds.
        let t = Datatype::hindexed(&[(1, -8), (1, 0)], &Datatype::int()).unwrap();
        let p = TransferPlan::compile(&t, 1);
        let mut out = [0u8; 8];
        assert!(matches!(
            p.pack(0, 8, &buf, 0, &mut out).unwrap_err(),
            SegmentError::OutOfBounds { .. }
        ));
    }

    #[test]
    fn resume_index_finds_overlapping_run() {
        let ty = Datatype::vector(4, 1, 3, &Datatype::int()).unwrap();
        let plan = TransferPlan::compile(&ty, 1);
        assert_eq!(plan.runs_per_instance(), 4);
        assert_eq!(plan.resume_index(0), 0);
        assert_eq!(plan.resume_index(3), 0);
        assert_eq!(plan.resume_index(4), 1);
        assert_eq!(plan.resume_index(15), 3);
    }

    #[test]
    fn block_count_is_log_time_consistent_on_wide_ranges() {
        // Many instances: the middle-instance shortcut must agree with
        // full enumeration.
        let ty = Datatype::vector(3, 2, 5, &Datatype::int()).unwrap();
        let plan = TransferPlan::compile(&ty, 64);
        let seg = Segment::new(&ty, 64);
        let n = plan.total_bytes();
        for (lo, hi) in [(0, n), (1, n - 1), (25, 1000), (24, 48), (7, 7)] {
            assert_eq!(
                plan.block_count_in(lo, hi).unwrap(),
                seg.block_count_in(lo, hi).unwrap()
            );
        }
    }
}
