//! Dataloops: the compiled form of a datatype.
//!
//! Following Ross, Miller & Gropp (ref [26]), a type tree is compiled
//! once into a compact loop structure with three node kinds:
//!
//! * [`Dataloop::Leaf`] — a dense run of bytes (contiguous children are
//!   coalesced into leaves at compile time),
//! * [`Dataloop::Strided`] — `count` copies of a child at a fixed byte
//!   stride (covers `contiguous`, `vector`, `hvector`),
//! * [`Dataloop::Seq`] — a heterogeneous sequence of `(offset, child)`
//!   entries with a stream-offset prefix table (covers `indexed`,
//!   `struct`).
//!
//! The key operation is [`Dataloop::emit`]: enumerate the contiguous
//! memory blocks of an arbitrary **stream-offset range** `[lo, hi)`.
//! This is the "partial datatype processing" of §4.3.1 — a segment
//! pack/unpack starts and stops at arbitrary byte positions without
//! touching the rest of the type, in `O(depth + blocks in range)` time.

use crate::typ::{Datatype, TypeKind};

/// A compiled dataloop node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Dataloop {
    /// `len` dense bytes at relative offset 0.
    Leaf {
        /// Length of the dense run.
        len: u64,
    },
    /// `count` copies of `child`, copy `i` at byte offset `i * stride`.
    Strided {
        /// Number of copies.
        count: u64,
        /// Byte stride between copies (may be negative).
        stride: i64,
        /// Bytes of stream data per copy (cached `child.stream_size()`).
        child_size: u64,
        /// Inner loop.
        child: Box<Dataloop>,
    },
    /// Heterogeneous children at explicit offsets, in typemap order.
    Seq {
        /// `(byte offset, child)` entries.
        entries: Vec<(i64, Dataloop)>,
        /// Exclusive prefix sums of child stream sizes; `prefix[i]` is
        /// the stream offset where entry `i` begins. Length =
        /// `entries.len() + 1`; the last element is the total size.
        prefix: Vec<u64>,
    },
}

impl Dataloop {
    /// Bytes of packed stream data this loop produces.
    pub fn stream_size(&self) -> u64 {
        match self {
            Dataloop::Leaf { len } => *len,
            Dataloop::Strided {
                count, child_size, ..
            } => count * child_size,
            Dataloop::Seq { prefix, .. } => *prefix.last().unwrap_or(&0),
        }
    }

    /// Number of loop nodes (compilation quality metric).
    pub fn node_count(&self) -> usize {
        match self {
            Dataloop::Leaf { .. } => 1,
            Dataloop::Strided { child, .. } => 1 + child.node_count(),
            Dataloop::Seq { entries, .. } => {
                1 + entries.iter().map(|(_, c)| c.node_count()).sum::<usize>()
            }
        }
    }

    /// Compiles a datatype into its dataloop.
    pub fn compile(ty: &Datatype) -> Dataloop {
        match ty.kind() {
            TypeKind::Primitive(p) => Dataloop::Leaf { len: p.size() },
            TypeKind::Contiguous { count, child } => {
                Self::strided(*count, child.extent(), Self::compile(child), child)
            }
            TypeKind::Hvector {
                count,
                blocklen,
                stride_bytes,
                child,
            } => {
                let inner = Self::strided(*blocklen, child.extent(), Self::compile(child), child);
                Self::strided_raw(*count, *stride_bytes, inner)
            }
            TypeKind::Hindexed { blocks, child } => {
                let cl = Self::compile(child);
                let entries = blocks
                    .iter()
                    .filter(|&&(l, _)| l * child.size() > 0)
                    .map(|&(l, d)| (d, Self::strided(l, child.extent(), cl.clone(), child)))
                    .collect();
                Self::seq(entries)
            }
            TypeKind::Struct { fields } => {
                let entries = fields
                    .iter()
                    .filter(|(l, _, t)| l * t.size() > 0)
                    .map(|(l, d, t)| (*d, Self::strided(*l, t.extent(), Self::compile(t), t)))
                    .collect();
                Self::seq(entries)
            }
            TypeKind::Resized { child } => Self::compile(child),
        }
    }

    /// Builds `count` copies of `inner` at the *child extent* stride,
    /// coalescing into a leaf when the layout is dense.
    fn strided(count: u64, child_extent: i64, inner: Dataloop, child: &Datatype) -> Dataloop {
        // Dense when: the child is a leaf covering its whole extent, so
        // consecutive copies form one run.
        if let Dataloop::Leaf { len } = inner {
            if child_extent >= 0 && child_extent as u64 == len && child.lb() == 0 {
                return Dataloop::Leaf { len: count * len };
            }
        }
        Self::strided_raw(count, child_extent, inner)
    }

    /// Builds `count` copies of `inner` at `stride` bytes, simplifying
    /// trivial cases (count 0/1, dense leaf runs).
    fn strided_raw(count: u64, stride: i64, inner: Dataloop) -> Dataloop {
        if count == 0 || inner.stream_size() == 0 {
            return Dataloop::Leaf { len: 0 };
        }
        if count == 1 {
            return inner;
        }
        if let Dataloop::Leaf { len } = inner {
            if stride >= 0 && stride as u64 == len {
                return Dataloop::Leaf { len: count * len };
            }
        }
        let child_size = inner.stream_size();
        Dataloop::Strided {
            count,
            stride,
            child_size,
            child: Box::new(inner),
        }
    }

    /// Builds a sequence node, coalescing adjacent dense leaves and
    /// unwrapping singletons at offset 0.
    fn seq(entries: Vec<(i64, Dataloop)>) -> Dataloop {
        let mut out: Vec<(i64, Dataloop)> = Vec::with_capacity(entries.len());
        for (off, dl) in entries {
            if dl.stream_size() == 0 {
                continue;
            }
            if let (Some((po, Dataloop::Leaf { len: pl })), Dataloop::Leaf { len }) =
                (out.last_mut(), &dl)
            {
                if *po + *pl as i64 == off {
                    *pl += len;
                    continue;
                }
            }
            out.push((off, dl));
        }
        if out.is_empty() {
            return Dataloop::Leaf { len: 0 };
        }
        if out.len() == 1 && out[0].0 == 0 {
            return out.pop().unwrap().1;
        }
        let mut prefix = Vec::with_capacity(out.len() + 1);
        let mut acc = 0u64;
        prefix.push(0);
        for (_, dl) in &out {
            acc += dl.stream_size();
            prefix.push(acc);
        }
        Dataloop::Seq {
            entries: out,
            prefix,
        }
    }

    /// Enumerates the contiguous memory blocks corresponding to stream
    /// offsets `[lo, hi)`. Each block is reported as
    /// `(memory offset relative to the instance origin + base, length)`,
    /// in typemap (pack) order. Blocks adjacent in memory are *not*
    /// merged here; use [`BlockCollector`] when coalescing is wanted.
    pub fn emit<F: FnMut(i64, u64)>(&self, lo: u64, hi: u64, base: i64, f: &mut F) {
        debug_assert!(hi <= self.stream_size() && lo <= hi);
        if lo >= hi {
            return;
        }
        match self {
            Dataloop::Leaf { .. } => {
                // Within a dense leaf, memory offset == stream offset.
                f(base + lo as i64, hi - lo);
            }
            Dataloop::Strided {
                stride,
                child_size,
                child,
                ..
            } => {
                let first = lo / child_size;
                let last = (hi - 1) / child_size;
                for i in first..=last {
                    let cbase = base + i as i64 * stride;
                    let clo = lo.saturating_sub(i * child_size).min(*child_size);
                    let chi = (hi - i * child_size).min(*child_size);
                    child.emit(clo, chi, cbase, f);
                }
            }
            Dataloop::Seq { entries, prefix } => {
                // First entry whose end is beyond lo.
                let start = match prefix.binary_search(&lo) {
                    Ok(i) => i,
                    Err(i) => i - 1,
                };
                for (i, (off, dl)) in entries.iter().enumerate().skip(start) {
                    let ebase = prefix[i];
                    if ebase >= hi {
                        break;
                    }
                    let clo = lo.saturating_sub(ebase).min(dl.stream_size());
                    let chi = (hi - ebase).min(dl.stream_size());
                    dl.emit(clo, chi, base + off, f);
                }
            }
        }
    }
}

/// Collects emitted blocks, merging runs that are adjacent both in the
/// stream and in memory — the canonical flattened form.
#[derive(Debug, Default)]
pub struct BlockCollector {
    blocks: Vec<(i64, u64)>,
}

impl BlockCollector {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one block.
    pub fn push(&mut self, off: i64, len: u64) {
        if len == 0 {
            return;
        }
        if let Some((po, pl)) = self.blocks.last_mut() {
            if *po + *pl as i64 == off {
                *pl += len;
                return;
            }
        }
        self.blocks.push((off, len));
    }

    /// The collected blocks.
    pub fn into_blocks(self) -> Vec<(i64, u64)> {
        self.blocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prim::Primitive;

    fn blocks_of(dl: &Dataloop, lo: u64, hi: u64) -> Vec<(i64, u64)> {
        let mut c = BlockCollector::new();
        dl.emit(lo, hi, 0, &mut |o, l| c.push(o, l));
        c.into_blocks()
    }

    #[test]
    fn primitive_compiles_to_leaf() {
        let dl = Dataloop::compile(&Datatype::int());
        assert_eq!(dl, Dataloop::Leaf { len: 4 });
    }

    #[test]
    fn contiguous_coalesces_to_leaf() {
        let t = Datatype::contiguous(1000, &Datatype::double()).unwrap();
        let dl = Dataloop::compile(&t);
        assert_eq!(dl, Dataloop::Leaf { len: 8000 });
    }

    #[test]
    fn vector_compiles_to_strided_leaf() {
        let t = Datatype::vector(128, 4, 4096, &Datatype::int()).unwrap();
        let dl = Dataloop::compile(&t);
        match &dl {
            Dataloop::Strided {
                count,
                stride,
                child,
                ..
            } => {
                assert_eq!(*count, 128);
                assert_eq!(*stride, 4096 * 4);
                assert_eq!(**child, Dataloop::Leaf { len: 16 });
            }
            other => panic!("expected strided, got {other:?}"),
        }
        assert_eq!(dl.stream_size(), 128 * 16);
        assert_eq!(dl.node_count(), 2);
    }

    #[test]
    fn dense_vector_collapses() {
        let t = Datatype::vector(16, 8, 8, &Datatype::int()).unwrap();
        assert_eq!(Dataloop::compile(&t), Dataloop::Leaf { len: 512 });
    }

    #[test]
    fn full_emit_matches_layout() {
        let t = Datatype::vector(3, 2, 5, &Datatype::int()).unwrap();
        let dl = Dataloop::compile(&t);
        assert_eq!(
            blocks_of(&dl, 0, dl.stream_size()),
            vec![(0, 8), (20, 8), (40, 8)]
        );
    }

    #[test]
    fn partial_emit_mid_block() {
        let t = Datatype::vector(3, 2, 5, &Datatype::int()).unwrap();
        let dl = Dataloop::compile(&t);
        // Stream bytes [3, 13): tail of block 0 (5 bytes at mem 3),
        // head of block 1 (5 bytes at mem 20).
        assert_eq!(blocks_of(&dl, 3, 13), vec![(3, 5), (20, 5)]);
    }

    #[test]
    fn partial_emit_exact_boundaries() {
        let t = Datatype::vector(4, 1, 3, &Datatype::int()).unwrap();
        let dl = Dataloop::compile(&t);
        assert_eq!(blocks_of(&dl, 4, 8), vec![(12, 4)]);
        assert_eq!(blocks_of(&dl, 8, 16), vec![(24, 4), (36, 4)]);
    }

    #[test]
    fn empty_range_emits_nothing() {
        let t = Datatype::vector(4, 1, 3, &Datatype::int()).unwrap();
        let dl = Dataloop::compile(&t);
        assert!(blocks_of(&dl, 8, 8).is_empty());
    }

    #[test]
    fn struct_compiles_to_seq() {
        let t = Datatype::struct_(&[
            (2, 0, Datatype::int()),
            (1, 16, Datatype::double()),
            (4, 32, Datatype::primitive(Primitive::Byte)),
        ])
        .unwrap();
        let dl = Dataloop::compile(&t);
        assert_eq!(
            blocks_of(&dl, 0, dl.stream_size()),
            vec![(0, 8), (16, 8), (32, 4)]
        );
        // Partial: skip the first field and half the double.
        assert_eq!(blocks_of(&dl, 12, 20), vec![(20, 4), (32, 4)]);
    }

    #[test]
    fn adjacent_struct_fields_coalesce() {
        let t = Datatype::struct_(&[(2, 0, Datatype::int()), (2, 8, Datatype::int())]).unwrap();
        assert_eq!(Dataloop::compile(&t), Dataloop::Leaf { len: 16 });
    }

    #[test]
    fn zero_size_fields_skipped() {
        let t = Datatype::struct_(&[(0, 0, Datatype::int()), (1, 8, Datatype::int())]).unwrap();
        let dl = Dataloop::compile(&t);
        assert_eq!(blocks_of(&dl, 0, 4), vec![(8, 4)]);
    }

    #[test]
    fn indexed_partial_emit_uses_prefix() {
        let t = Datatype::indexed(&[(1, 0), (2, 4), (1, 10)], &Datatype::int()).unwrap();
        let dl = Dataloop::compile(&t);
        // Stream: [0,4)->mem 0; [4,12)->mem 16..24; [12,16)->mem 40.
        assert_eq!(blocks_of(&dl, 0, 16), vec![(0, 4), (16, 8), (40, 4)]);
        assert_eq!(blocks_of(&dl, 6, 14), vec![(18, 6), (40, 2)]);
    }

    #[test]
    fn negative_stride_emit() {
        let t = Datatype::vector(3, 1, -2, &Datatype::int()).unwrap();
        let dl = Dataloop::compile(&t);
        assert_eq!(blocks_of(&dl, 0, 12), vec![(0, 4), (-8, 4), (-16, 4)]);
    }

    #[test]
    fn nested_vector_of_vector() {
        let inner = Datatype::vector(2, 1, 2, &Datatype::int()).unwrap(); // 2 ints 8B apart
        let outer = Datatype::hvector(2, 1, 100, &inner).unwrap();
        let dl = Dataloop::compile(&outer);
        assert_eq!(
            blocks_of(&dl, 0, 16),
            vec![(0, 4), (8, 4), (100, 4), (108, 4)]
        );
        // Partial across the outer boundary.
        assert_eq!(blocks_of(&dl, 6, 10), vec![(10, 2), (100, 2)]);
    }

    #[test]
    fn resized_does_not_change_loop() {
        let v = Datatype::vector(2, 1, 4, &Datatype::int()).unwrap();
        let r = Datatype::resized(&v, -8, 64).unwrap();
        assert_eq!(Dataloop::compile(&v), Dataloop::compile(&r));
    }

    #[test]
    fn collector_merges_memory_adjacent_runs() {
        let mut c = BlockCollector::new();
        c.push(0, 4);
        c.push(4, 4);
        c.push(10, 2);
        c.push(0, 0); // ignored
        assert_eq!(c.into_blocks(), vec![(0, 8), (10, 2)]);
    }
}
