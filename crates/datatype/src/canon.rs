//! Datatype canonicalization (TEMPI-style, arXiv:2012.14363).
//!
//! Two constructor trees that describe the same byte layout — a
//! `vector` vs the equivalent `hindexed`, a `struct` of one field vs
//! the field itself, nested `contiguous` spellings — compile to
//! identical transfer plans, yet a plan cache keyed on type identity
//! recompiles each spelling from scratch. This pass rewrites any tree
//! to a *normal form* derived from its merged flat block list, walking
//! down the specialization hierarchy of arXiv:1607.00178
//! (`contiguous` ≤ `hvector` ≤ `hindexed`):
//!
//! * no blocks → `contiguous(0, byte)`;
//! * one block at offset 0 → `contiguous(len, byte)`;
//! * one displaced block → `hindexed([(len, off)], byte)`;
//! * ≥2 equal-length constant-stride blocks → `hvector` (shifted
//!   through a one-entry `hindexed` when the first block is displaced);
//! * anything else → `hindexed(blocks, byte)`;
//! * finally a `resized` wrapper whenever the original type's
//!   `(lb, ub)` differ from the core's natural bounds.
//!
//! The flat block list is produced by [`FlatLayout::of`] with adjacent
//! blocks already merged, so the normal form's own flattening
//! reproduces the input list exactly — canonicalization is idempotent
//! by construction, and pack/unpack streams (which are functions of
//! the merged block list, size, and bounds alone) are preserved for
//! every count.
//!
//! Equal layouts are *interned* in a bounded process-global table so
//! every spelling of one layout resolves to the same `Datatype`
//! handle (same id), which is what lets `PlanCache` and the shared
//! plan table hit across spellings and across ranks.

use crate::typ::Datatype;
use std::collections::HashMap;
use std::sync::Mutex;

/// Layout identity: the merged block list plus the MPI bounds. Two
/// types with equal keys are observationally equivalent under
/// pack/unpack at every count (blocks fix the byte stream and the
/// per-instance advance is `ub - lb`).
#[derive(Hash, PartialEq, Eq)]
struct CanonKey {
    blocks: Vec<(i64, u64)>,
    lb: i64,
    ub: i64,
}

/// Bounded intern table mapping layouts to their canonical handles.
/// Cleared wholesale on overflow (same discipline as the shared plan
/// table): correctness never depends on a hit, only dedup does.
static CANON_TABLE: Mutex<Option<HashMap<CanonKey, Datatype>>> = Mutex::new(None);
const CANON_TABLE_CAP: usize = 512;

/// Drops every interned canonical handle (test isolation).
#[doc(hidden)]
pub fn clear_intern_table() {
    *CANON_TABLE.lock().unwrap() = None;
}

/// Computes the canonical handle for `ty`, or `None` when `ty` is its
/// own canonical form (first spelling of its layout seen, or already
/// interned as the canonical one). Called once per type through the
/// node's canon cache.
pub(crate) fn canonical_of(ty: &Datatype) -> Option<Datatype> {
    let flat = ty.flat().clone();
    let key = CanonKey {
        blocks: flat.blocks.clone(),
        lb: ty.lb(),
        ub: ty.ub(),
    };
    let mut guard = CANON_TABLE.lock().unwrap();
    let table = guard.get_or_insert_with(HashMap::new);
    if let Some(hit) = table.get(&key) {
        return if hit.id() == ty.id() {
            None
        } else {
            Some(hit.clone())
        };
    }
    if table.len() >= CANON_TABLE_CAP {
        table.clear();
    }
    let nf = normal_form(ty, &flat.blocks);
    match nf {
        // `ty` already spells the normal form: intern it so later
        // spellings resolve to this very handle.
        None => {
            table.insert(key, ty.clone());
            None
        }
        Some(nf) => {
            table.insert(key, nf.clone());
            Some(nf)
        }
    }
}

/// Builds the normal-form spelling of a merged block list with `ty`'s
/// bounds, or `None` when `ty` itself already has that exact shape.
fn normal_form(ty: &Datatype, blocks: &[(i64, u64)]) -> Option<Datatype> {
    let byte = Datatype::byte();
    let core = match blocks {
        [] => Datatype::contiguous(0, &byte).expect("empty contiguous"),
        [(0, len)] => Datatype::contiguous(*len, &byte).expect("single contiguous"),
        [(off, len)] => Datatype::hindexed(&[(*len, *off)], &byte).expect("single block"),
        _ => {
            let (off0, len0) = blocks[0];
            let stride = blocks[1].0 - off0;
            let regular = blocks
                .iter()
                .enumerate()
                .all(|(i, &(o, l))| l == len0 && o == off0 + i as i64 * stride);
            if regular {
                let hv = Datatype::hvector(blocks.len() as u64, len0, stride, &byte)
                    .expect("regular blocks fit an hvector");
                if off0 == 0 {
                    hv
                } else {
                    Datatype::hindexed(&[(1, off0)], &hv).expect("shifted hvector")
                }
            } else {
                let entries: Vec<(u64, i64)> = blocks.iter().map(|&(o, l)| (l, o)).collect();
                Datatype::hindexed(&entries, &byte).expect("irregular blocks fit an hindexed")
            }
        }
    };
    let wrapped = if core.lb() == ty.lb() && core.ub() == ty.ub() {
        core
    } else {
        Datatype::resized(&core, ty.lb(), ty.ub() - ty.lb()).expect("bounds fit a resize")
    };
    if same_spelling(ty, &wrapped) {
        None
    } else {
        Some(wrapped)
    }
}

/// Structural equality of two constructor trees (same spelling, not
/// just the same layout). Used only to detect that a type is already
/// written in normal form, so the comparison mirrors exactly the
/// shapes `normal_form` can produce.
fn same_spelling(a: &Datatype, b: &Datatype) -> bool {
    use crate::typ::TypeKind as K;
    if a.lb() != b.lb() || a.ub() != b.ub() || a.size() != b.size() {
        return false;
    }
    match (a.kind(), b.kind()) {
        (K::Primitive(pa), K::Primitive(pb)) => pa == pb,
        (
            K::Contiguous {
                count: ca,
                child: la,
            },
            K::Contiguous {
                count: cb,
                child: lb,
            },
        ) => ca == cb && same_spelling(la, lb),
        (
            K::Hvector {
                count: ca,
                blocklen: la,
                stride_bytes: sa,
                child: xa,
            },
            K::Hvector {
                count: cb,
                blocklen: lb,
                stride_bytes: sb,
                child: xb,
            },
        ) => ca == cb && la == lb && sa == sb && same_spelling(xa, xb),
        (
            K::Hindexed {
                blocks: ba,
                child: xa,
            },
            K::Hindexed {
                blocks: bb,
                child: xb,
            },
        ) => ba == bb && same_spelling(xa, xb),
        (K::Resized { child: ca }, K::Resized { child: cb }) => same_spelling(ca, cb),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blocks(ty: &Datatype, count: u64) -> Vec<(i64, u64)> {
        ty.flat().repeat(count)
    }

    #[test]
    fn respelled_vector_shares_one_canonical_handle() {
        let byte = Datatype::byte();
        // The same 4×(256 @ stride 512) layout under three spellings.
        let v = Datatype::hvector(4, 256, 512, &byte).unwrap();
        let hx =
            Datatype::hindexed(&[(256, 0), (256, 512), (256, 1024), (256, 1536)], &byte).unwrap();
        let st = Datatype::struct_(&[
            (1, 0, Datatype::hvector(2, 256, 512, &byte).unwrap()),
            (1, 1024, Datatype::hvector(2, 256, 512, &byte).unwrap()),
        ])
        .unwrap();
        // struct_ carries ub = 1024 + 768 = 1792 while the hvector's ub
        // is 1536 + 256 = 1792: identical bounds, identical blocks.
        let cv = v.canonical();
        let cx = hx.canonical();
        let cs = st.canonical();
        assert_eq!(cv.id(), cx.id(), "hindexed spelling missed the intern");
        assert_eq!(cv.id(), cs.id(), "struct spelling missed the intern");
        for count in [1, 2, 5] {
            assert_eq!(blocks(&v, count), blocks(&cv, count));
        }
    }

    #[test]
    fn canonicalization_is_idempotent() {
        let byte = Datatype::byte();
        let t = Datatype::hindexed(&[(16, 0), (32, 64), (8, 200)], &byte).unwrap();
        let c = t.canonical();
        let cc = c.canonical();
        assert_eq!(c.id(), cc.id(), "canonical form must be a fixed point");
    }

    #[test]
    fn contiguous_collapses_nested_spellings() {
        let byte = Datatype::byte();
        let a = Datatype::contiguous(64, &byte).unwrap();
        let b = Datatype::contiguous(16, &Datatype::contiguous(4, &byte).unwrap()).unwrap();
        let c = Datatype::hvector(8, 8, 8, &byte).unwrap();
        let ca = a.canonical();
        assert_eq!(ca.id(), b.canonical().id());
        assert_eq!(ca.id(), c.canonical().id());
        assert!(ca.is_contiguous());
    }

    #[test]
    fn resized_bounds_are_preserved() {
        let byte = Datatype::byte();
        let t = Datatype::hvector(3, 8, 32, &byte).unwrap();
        let r = Datatype::resized(&t, -8, 128).unwrap();
        let c = r.canonical();
        assert_eq!(c.lb(), -8);
        assert_eq!(c.ub(), 120);
        assert_eq!(c.size(), r.size());
        for count in [1, 3] {
            assert_eq!(blocks(&r, count), blocks(&c, count));
        }
        // Distinct bounds must NOT collide with the unresized layout.
        assert_ne!(c.id(), t.canonical().id());
    }

    #[test]
    fn displaced_regular_blocks_keep_their_shift() {
        let byte = Datatype::byte();
        let t = Datatype::hindexed(&[(64, 128), (64, 384), (64, 640)], &byte).unwrap();
        let c = t.canonical();
        for count in [1, 2] {
            assert_eq!(blocks(&t, count), blocks(&c, count));
        }
        assert_eq!(c.id(), c.canonical().id());
    }

    #[test]
    fn single_field_struct_collapses_to_its_field() {
        let byte = Datatype::byte();
        let inner = Datatype::hvector(4, 16, 64, &byte).unwrap();
        let st = Datatype::struct_(&[(1, 0, inner.clone())]).unwrap();
        assert_eq!(st.canonical().id(), inner.canonical().id());
    }

    #[test]
    fn adjacent_runs_merge_before_canonicalizing() {
        let byte = Datatype::byte();
        // Two touching 32-byte blocks are one 64-byte block.
        let split = Datatype::hindexed(&[(32, 0), (32, 32), (16, 128)], &byte).unwrap();
        let merged = Datatype::hindexed(&[(64, 0), (16, 128)], &byte).unwrap();
        assert_eq!(split.canonical().id(), merged.canonical().id());
    }

    #[test]
    fn different_layouts_never_unify() {
        let byte = Datatype::byte();
        let a = Datatype::hvector(4, 16, 64, &byte).unwrap();
        let b = Datatype::hvector(4, 16, 80, &byte).unwrap();
        assert_ne!(a.canonical().id(), b.canonical().id());
    }

    #[test]
    fn zero_size_type_canonicalizes() {
        let byte = Datatype::byte();
        let t = Datatype::contiguous(0, &byte).unwrap();
        let c = t.canonical();
        assert_eq!(c.size(), 0);
        assert_eq!(c.id(), c.canonical().id());
    }
}
