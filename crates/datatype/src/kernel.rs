//! Specialized copy kernels for compiled transfer plans.
//!
//! A [`TransferPlan`](crate::TransferPlan) classifies its merged block
//! list once at compile time into a [`CopyKernel`]; pack and unpack
//! then execute the same kernel symmetrically. The classification is
//! purely a *copy strategy* — it never changes which bytes move or the
//! stream order, only how the inner loop is shaped:
//!
//! * [`CopyKernel::Contig`] — the whole message is one dense block; a
//!   single `memcpy` each way.
//! * [`CopyKernel::ConstStride`] — uniform-length blocks at a constant
//!   stride (the 1-D vector shape): a tight loop with the offset
//!   computed by multiplication, no per-block table walk.
//! * [`CopyKernel::TwoLevel`] — groups of uniform blocks at an inner
//!   stride, repeated at an outer stride (2-D vector shapes such as
//!   `hvector(vector)`): two nested loops, both strides constant.
//! * [`CopyKernel::Generic`] — anything irregular: walk the merged
//!   block list.
//!
//! All kernels copy through [`copy_block`], which specializes small
//! word-multiple lengths into unrolled `u64` moves — the common case
//! for vector types over `int`/`double` where a block is 8–64 bytes
//! and a `memcpy` call would be mostly dispatch overhead.

/// Copy strategy selected from a merged block list at plan-compile
/// time. See the module docs for the shapes each variant captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyKernel {
    /// Single dense block: one `memcpy`.
    Contig,
    /// `n` blocks of `block` bytes, each `stride` bytes after the
    /// previous one.
    ConstStride {
        /// Uniform block length in bytes.
        block: u64,
        /// Signed distance between consecutive block offsets.
        stride: i64,
    },
    /// `outer_n` groups of `inner_n` blocks of `block` bytes; blocks
    /// within a group are `inner_stride` apart, groups are
    /// `outer_stride` apart.
    TwoLevel {
        /// Uniform block length in bytes.
        block: u64,
        /// Blocks per inner group.
        inner_n: u64,
        /// Signed distance between blocks within a group.
        inner_stride: i64,
        /// Signed distance between group origins.
        outer_stride: i64,
    },
    /// Irregular layout: iterate the merged block list.
    Generic,
}

impl CopyKernel {
    /// Classifies a merged block list. `blocks` must be the canonical
    /// merged form (adjacent blocks coalesced) — the same list the
    /// plan's descriptor builds use, so the classification and the
    /// copies always agree on shape.
    pub fn select(blocks: &[(i64, u64)]) -> CopyKernel {
        if blocks.len() <= 1 {
            return CopyKernel::Contig;
        }
        let block = blocks[0].1;
        if blocks.iter().any(|&(_, l)| l != block) {
            return CopyKernel::Generic;
        }
        let first = blocks[0].0;
        let stride = blocks[1].0 - first;
        // Constant stride: every consecutive gap equals the first.
        let break_at = blocks
            .windows(2)
            .position(|w| w[1].0 - w[0].0 != stride)
            .map(|i| i + 1);
        let Some(inner_n) = break_at else {
            return CopyKernel::ConstStride { block, stride };
        };
        // Two-level: the first `inner_n` blocks set the inner stride;
        // check the whole list matches (group, lane) decomposition.
        if !blocks.len().is_multiple_of(inner_n) {
            return CopyKernel::Generic;
        }
        let outer_stride = blocks[inner_n].0 - first;
        let fits = blocks.iter().enumerate().all(|(i, &(o, _))| {
            let g = (i / inner_n) as i64;
            let l = (i % inner_n) as i64;
            o == first + g * outer_stride + l * stride
        });
        if fits {
            CopyKernel::TwoLevel {
                block,
                inner_n: inner_n as u64,
                inner_stride: stride,
                outer_stride,
            }
        } else {
            CopyKernel::Generic
        }
    }

    /// Short static name, for stats and bench labels.
    pub fn name(&self) -> &'static str {
        match self {
            CopyKernel::Contig => "contig",
            CopyKernel::ConstStride { .. } => "const_stride",
            CopyKernel::TwoLevel { .. } => "two_level",
            CopyKernel::Generic => "generic",
        }
    }
}

/// Copies `len` bytes from `src` to `dst`, specializing small
/// word-multiple lengths into unrolled `u64` moves.
///
/// # Safety
/// Both pointers must be valid for `len` bytes and the ranges must not
/// overlap. Alignment is not required (`read_unaligned` /
/// `write_unaligned`).
#[inline]
pub unsafe fn copy_block(src: *const u8, dst: *mut u8, len: usize) {
    match len {
        4 => {
            let w = (src as *const u32).read_unaligned();
            (dst as *mut u32).write_unaligned(w);
        }
        8 => {
            let w = (src as *const u64).read_unaligned();
            (dst as *mut u64).write_unaligned(w);
        }
        _ if len.is_multiple_of(16) && len <= 128 => {
            let mut i = 0;
            while i < len {
                let w = (src.add(i) as *const u128).read_unaligned();
                (dst.add(i) as *mut u128).write_unaligned(w);
                i += 16;
            }
        }
        _ if len.is_multiple_of(8) && len <= 64 => {
            let mut i = 0;
            while i < len {
                let w = (src.add(i) as *const u64).read_unaligned();
                (dst.add(i) as *mut u64).write_unaligned(w);
                i += 8;
            }
        }
        _ => std::ptr::copy_nonoverlapping(src, dst, len),
    }
}

/// Issues a best-effort cache prefetch for the line at `p`. No-op on
/// architectures without an exposed prefetch intrinsic. The address is
/// never dereferenced, so pointers just past (or outside) a buffer are
/// fine.
#[inline(always)]
pub fn prefetch(p: *const u8) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        use core::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<_MM_HINT_T0>(p as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Write-intent variant of [`prefetch`] (`prefetchw` where supported):
/// pulls the line in exclusive state so an upcoming store skips the
/// read-for-ownership round trip — strided *writes* are otherwise
/// twice the cost of strided reads of the same footprint.
#[inline(always)]
pub fn prefetch_write(p: *const u8) {
    #[cfg(target_arch = "x86_64")]
    unsafe {
        use core::arch::x86_64::{_mm_prefetch, _MM_HINT_ET0};
        _mm_prefetch::<_MM_HINT_ET0>(p as *const i8);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Prefetches every cache line of the `len`-byte block at `p` —
/// [`prefetch`] with read intent when `PACK` (the strided side is
/// read), [`prefetch_write`] otherwise (the strided side is written).
/// Multi-line blocks (e.g. 256 B = 4 lines) need all their lines
/// requested; fetching only the first leaves the rest to demand
/// misses.
#[inline(always)]
pub fn prefetch_block<const PACK: bool>(p: *const u8, len: usize) {
    let mut l = 0usize;
    loop {
        if PACK {
            prefetch(p.wrapping_add(l));
        } else {
            prefetch_write(p.wrapping_add(l));
        }
        l += 64;
        if l >= len {
            break;
        }
    }
}

/// Minimum uniform block length for the vectorized strided path:
/// below this the unrolled word moves in [`copy_block`] are already a
/// handful of instructions and the wide-store loop has nothing to add.
pub const SIMD_MIN_BLOCK: usize = 32;

/// Strided copy between a contiguous stream and `n` uniform
/// `block`-byte views `stride` bytes apart, with 32-byte AVX2 vector
/// moves. `PACK` reads the strided side into the stream; `!PACK`
/// scatters the stream out to the strided side.
///
/// The payoff is on unpack: wide stores that straddle a cache line pay
/// a split-store penalty on every line (measured ~1.8× on the strided
/// vector shape), so each block's destination is walked up to a
/// 32-byte boundary with [`copy_block`] before the vector loop. Loads
/// tolerate misalignment, so pack skips the head walk.
///
/// Returns `false` without copying when AVX2 is unavailable or the
/// block is too short to benefit — the caller keeps its scalar loop as
/// the fallback.
///
/// # Safety
/// `stream` must be valid for `n * block` bytes; every strided view
/// `strided + i*stride .. + block` must be in-bounds writable (unpack)
/// or readable (pack) memory; ranges must not overlap the stream.
#[cfg(target_arch = "x86_64")]
#[inline]
pub unsafe fn copy_strided_simd<const PACK: bool>(
    strided: *mut u8,
    stream: *mut u8,
    block: usize,
    stride: i64,
    n: usize,
) -> bool {
    if !simd_strided_ok(block) {
        return false;
    }
    strided_avx2::<PACK>(strided, stream, block, stride as isize, n);
    true
}

/// True when [`copy_strided_simd`] would take the vector path for
/// `block`-byte blocks — lets a caller with several strided runs (the
/// two-level kernel) decide once instead of per run.
#[cfg(target_arch = "x86_64")]
#[inline]
pub fn simd_strided_ok(block: usize) -> bool {
    block >= SIMD_MIN_BLOCK && std::arch::is_x86_feature_detected!("avx2")
}

/// Blocks of lookahead on the strided side of the AVX2 loop. Large
/// strides (the vector shape is 16 KiB apart) defeat the hardware
/// prefetcher, and on unpack every strided store line otherwise eats
/// a demand read-for-ownership miss — but the distance must stay
/// shallow: a power-of-two stride aliases every block onto the same
/// few L1 sets, so prefetching D blocks ahead parks 4·D extra lines
/// in 4 sets of an 8-way cache and evicts the lines the in-flight
/// stores still need. Measured in situ on `unpack/plan/vector_cols`:
/// distance 1 is the only depth that never loses to no-prefetch
/// (~5-10% win at 1024 columns); 4 costs +10-15% and 8 costs +20%.
const AVX2_PF_BLOCKS: usize = 1;

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn strided_avx2<const PACK: bool>(
    strided: *mut u8,
    stream: *mut u8,
    block: usize,
    stride: isize,
    n: usize,
) {
    use core::arch::x86_64::{__m256i, _mm256_loadu_si256, _mm256_storeu_si256};
    let mut s = stream;
    for i in 0..n {
        if i + AVX2_PF_BLOCKS < n {
            // Request the strided-side lines a few blocks out — with
            // write intent on unpack, so the stores land on lines
            // already owned instead of stalling on RFO round trips.
            prefetch_block::<PACK>(
                strided.offset((i + AVX2_PF_BLOCKS) as isize * stride) as *const u8,
                block,
            );
        }
        let mut u = strided.offset(i as isize * stride);
        let mut rem = block;
        if !PACK {
            // Align the store side; the body's 32-byte stores then
            // never split a cache line.
            let head = u.align_offset(32).min(rem);
            if head > 0 {
                copy_block(s as *const u8, u, head);
                s = s.add(head);
                u = u.add(head);
                rem -= head;
            }
        }
        while rem >= 32 {
            let v = if PACK {
                _mm256_loadu_si256(u as *const __m256i)
            } else {
                _mm256_loadu_si256(s as *const __m256i)
            };
            if PACK {
                _mm256_storeu_si256(s as *mut __m256i, v);
            } else {
                _mm256_storeu_si256(u as *mut __m256i, v);
            }
            s = s.add(32);
            u = u.add(32);
            rem -= 32;
        }
        if rem > 0 {
            if PACK {
                copy_block(u as *const u8, s, rem);
            } else {
                copy_block(s as *const u8, u, rem);
            }
            s = s.add(rem);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_contig_for_single_block() {
        assert_eq!(CopyKernel::select(&[(0, 48)]), CopyKernel::Contig);
        assert_eq!(CopyKernel::select(&[]), CopyKernel::Contig);
    }

    #[test]
    fn selects_const_stride_for_vector() {
        let blocks: Vec<(i64, u64)> = (0..128).map(|i| (i * 16384, 16)).collect();
        assert_eq!(
            CopyKernel::select(&blocks),
            CopyKernel::ConstStride {
                block: 16,
                stride: 16384
            }
        );
    }

    #[test]
    fn selects_const_stride_with_negative_stride() {
        let blocks: Vec<(i64, u64)> = (0..4).map(|i| (-i * 32, 8)).collect();
        assert_eq!(
            CopyKernel::select(&blocks),
            CopyKernel::ConstStride {
                block: 8,
                stride: -32
            }
        );
    }

    #[test]
    fn selects_two_level_for_vector_of_vectors() {
        // 3 groups of 4 blocks: inner stride 8, outer stride 100.
        let mut blocks = Vec::new();
        for g in 0..3i64 {
            for l in 0..4i64 {
                blocks.push((g * 100 + l * 8, 4u64));
            }
        }
        assert_eq!(
            CopyKernel::select(&blocks),
            CopyKernel::TwoLevel {
                block: 4,
                inner_n: 4,
                inner_stride: 8,
                outer_stride: 100
            }
        );
    }

    #[test]
    fn selects_generic_for_mixed_lengths_or_ragged_offsets() {
        assert_eq!(
            CopyKernel::select(&[(0, 4), (8, 8), (24, 4)]),
            CopyKernel::Generic
        );
        assert_eq!(
            CopyKernel::select(&[(0, 4), (8, 4), (24, 4), (28, 4)]),
            CopyKernel::Generic
        );
    }

    #[test]
    fn copy_block_matches_memcpy_for_all_small_lengths() {
        for len in 0..100usize {
            let src: Vec<u8> = (0..len).map(|i| (i * 7 + 3) as u8).collect();
            let mut dst = vec![0u8; len];
            unsafe { copy_block(src.as_ptr(), dst.as_mut_ptr(), len) };
            assert_eq!(src, dst, "len={len}");
        }
    }
}
