//! The versioned datatype cache of §5.4.2.
//!
//! Multi-W requires the sender to know the *receiver's* layout. To avoid
//! shipping the flattened representation on every operation, the
//! receiver assigns each datatype a small **type index** and the sender
//! caches layouts keyed by `(receiver rank, index)`. MPI programs may
//! free a datatype and the index may be reused for a new type, so each
//! index carries a **version number** that is bumped on reuse; a version
//! mismatch at the sender forces a refresh — exactly the extension the
//! paper describes over the Träff et al. cache (ref [14]).

use crate::flat::FlatLayout;
use crate::typ::Datatype;
use std::collections::HashMap;
use std::sync::Arc;

/// A receiver-local datatype index with its current version.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TypeTag {
    /// Slot index in the receiver's registry.
    pub index: u32,
    /// Version of the slot; bumped when the index is reused.
    pub version: u32,
}

#[derive(Debug)]
struct Slot {
    ty_id: u64,
    version: u32,
}

/// Receiver-side registry mapping datatypes to `(index, version)` tags.
#[derive(Debug, Default)]
pub struct TypeRegistry {
    slots: Vec<Option<Slot>>,
    free: Vec<u32>,
    by_type: HashMap<u64, u32>,
}

impl TypeRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the tag for `ty`, assigning a slot on first sight.
    /// Freed indices are reused with a bumped version.
    pub fn register(&mut self, ty: &Datatype) -> TypeTag {
        if let Some(&idx) = self.by_type.get(&ty.id()) {
            let slot = self.slots[idx as usize]
                .as_ref()
                .expect("by_type points at a live slot");
            return TypeTag {
                index: idx,
                version: slot.version,
            };
        }
        if let Some(idx) = self.free.pop() {
            let slot = self.slots[idx as usize]
                .as_mut()
                .expect("free list points at an existing slot");
            slot.ty_id = ty.id();
            slot.version += 1;
            self.by_type.insert(ty.id(), idx);
            TypeTag {
                index: idx,
                version: slot.version,
            }
        } else {
            let idx = self.slots.len() as u32;
            self.slots.push(Some(Slot {
                ty_id: ty.id(),
                version: 1,
            }));
            self.by_type.insert(ty.id(), idx);
            TypeTag {
                index: idx,
                version: 1,
            }
        }
    }

    /// Frees the slot of `ty` (models `MPI_Type_free`). The index
    /// becomes reusable; its next user gets a bumped version.
    pub fn free_type(&mut self, ty: &Datatype) -> bool {
        let Some(idx) = self.by_type.remove(&ty.id()) else {
            return false;
        };
        // Keep the slot (with its version) so reuse can bump it; mark it
        // free by pushing on the free list. The ty_id is cleared below
        // only logically — by_type no longer points here.
        self.free.push(idx);
        true
    }

    /// Number of live (registered) datatypes.
    pub fn live_count(&self) -> usize {
        self.by_type.len()
    }

    /// Returns the registry to its just-constructed state, keeping
    /// container capacity. Slots (and their versions) are discarded,
    /// so the next registration starts from index 0, version 1 — tag
    /// assignment after a reset is bit-identical to a fresh registry's.
    pub fn reset(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.by_type.clear();
    }
}

/// Sender-side cache of peers' flattened layouts.
#[derive(Debug, Default)]
pub struct LayoutCache {
    map: HashMap<(u32, u32), (u32, Arc<FlatLayout>)>,
    hits: u64,
    misses: u64,
}

impl LayoutCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up the layout for `(peer, tag)`. A version mismatch evicts
    /// the stale entry and misses.
    pub fn lookup(&mut self, peer: u32, tag: TypeTag) -> Option<Arc<FlatLayout>> {
        match self.map.get(&(peer, tag.index)) {
            Some((ver, layout)) if *ver == tag.version => {
                self.hits += 1;
                Some(layout.clone())
            }
            Some(_) => {
                self.map.remove(&(peer, tag.index));
                self.misses += 1;
                None
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Stores a freshly received layout.
    pub fn insert(&mut self, peer: u32, tag: TypeTag, layout: Arc<FlatLayout>) {
        self.map.insert((peer, tag.index), (tag.version, layout));
    }

    /// `(hits, misses)` counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Empties the cache and zeroes its counters, keeping map capacity.
    pub fn reset(&mut self) {
        self.map.clear();
        self.hits = 0;
        self.misses = 0;
    }

    /// Number of cached layouts.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_assigns_stable_tags() {
        let mut r = TypeRegistry::new();
        let a = Datatype::int();
        let b = Datatype::vector(2, 1, 2, &Datatype::int()).unwrap();
        let ta = r.register(&a);
        let tb = r.register(&b);
        assert_ne!(ta.index, tb.index);
        // Same type → same tag.
        assert_eq!(r.register(&a), ta);
        assert_eq!(r.live_count(), 2);
    }

    #[test]
    fn index_reuse_bumps_version() {
        let mut r = TypeRegistry::new();
        let a = Datatype::int();
        let ta = r.register(&a);
        assert!(r.free_type(&a));
        let b = Datatype::double();
        let tb = r.register(&b);
        assert_eq!(tb.index, ta.index, "freed index is reused");
        assert_eq!(tb.version, ta.version + 1, "version bumped on reuse");
    }

    #[test]
    fn freeing_unknown_type_is_noop() {
        let mut r = TypeRegistry::new();
        assert!(!r.free_type(&Datatype::int()));
    }

    #[test]
    fn layout_cache_hit_and_miss() {
        let mut c = LayoutCache::new();
        let t = Datatype::vector(2, 1, 2, &Datatype::int()).unwrap();
        let tag = TypeTag {
            index: 0,
            version: 1,
        };
        assert!(c.lookup(3, tag).is_none());
        c.insert(3, tag, t.flat().clone());
        assert!(c.lookup(3, tag).is_some());
        // Different peer misses.
        assert!(c.lookup(4, tag).is_none());
        assert_eq!(c.stats(), (1, 2));
    }

    #[test]
    fn version_mismatch_evicts() {
        let mut c = LayoutCache::new();
        let t = Datatype::int();
        let tag_v1 = TypeTag {
            index: 7,
            version: 1,
        };
        c.insert(0, tag_v1, t.flat().clone());
        let tag_v2 = TypeTag {
            index: 7,
            version: 2,
        };
        assert!(c.lookup(0, tag_v2).is_none(), "stale version must miss");
        assert!(c.is_empty(), "stale entry evicted");
        // Even the old version now misses (entry gone).
        assert!(c.lookup(0, tag_v1).is_none());
    }

    #[test]
    fn full_protocol_flow() {
        // Receiver registers, sender caches, receiver frees + reuses,
        // sender detects staleness.
        let mut reg = TypeRegistry::new();
        let mut cache = LayoutCache::new();
        let t1 = Datatype::vector(4, 1, 2, &Datatype::int()).unwrap();
        let tag1 = reg.register(&t1);
        cache.insert(9, tag1, t1.flat().clone());
        assert!(cache.lookup(9, tag1).is_some());

        reg.free_type(&t1);
        let t2 = Datatype::vector(8, 1, 2, &Datatype::int()).unwrap();
        let tag2 = reg.register(&t2);
        assert_eq!(tag2.index, tag1.index);
        assert!(cache.lookup(9, tag2).is_none(), "sender must refresh");
        cache.insert(9, tag2, t2.flat().clone());
        assert_eq!(cache.lookup(9, tag2).unwrap().size, t2.size());
    }
}
