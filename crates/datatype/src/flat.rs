//! Flattened layouts, block statistics, and wire serialization.
//!
//! A [`FlatLayout`] is the linear list of `<offset, length>` tuples of
//! §5.4.2 — the representation a Multi-W receiver ships to the sender so
//! that the sender can aim one RDMA Write per contiguous block. Block
//! statistics (mean/median block size) drive the adaptive scheme choice
//! of §6.

use crate::dataloop::BlockCollector;
use crate::typ::Datatype;

/// Flattened layout of one datatype instance: contiguous blocks in
/// typemap order, adjacent-in-memory runs merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatLayout {
    /// `(memory offset relative to buffer address, length)` per block.
    pub blocks: Vec<(i64, u64)>,
    /// Total data bytes (sum of block lengths).
    pub size: u64,
    /// Type extent (stride between instances).
    pub extent: i64,
}

impl FlatLayout {
    /// Flattens one instance of `ty`.
    pub fn of(ty: &Datatype) -> FlatLayout {
        let dl = ty.dataloop();
        let mut c = BlockCollector::new();
        dl.emit(0, dl.stream_size(), 0, &mut |o, l| c.push(o, l));
        FlatLayout {
            blocks: c.into_blocks(),
            size: ty.size(),
            extent: ty.extent(),
        }
    }

    /// Expands to `count` instances, instance `i` shifted by
    /// `i * extent`, merging across instance boundaries when dense.
    ///
    /// Within one instance the block list is already canonical (no two
    /// consecutive blocks are memory-adjacent), so the only possible
    /// merge is the last block of instance `i` with the first block of
    /// instance `i + 1` — decidable once, up front. That classifies the
    /// expansion into three closed forms (single run, plain replication,
    /// fused boundaries), each emitted with one exact-size allocation
    /// and no per-block merge scan. Output is bit-identical to feeding
    /// every block through [`BlockCollector`] (see
    /// [`Self::repeat_naive`] and the equivalence property test).
    pub fn repeat(&self, count: u64) -> Vec<(i64, u64)> {
        if count == 0 || self.blocks.is_empty() {
            return Vec::new();
        }
        // The closed forms below assume the canonical shape
        // `BlockCollector` produces (no zero-length blocks, no two
        // consecutive blocks memory-adjacent). Layouts built by
        // [`Self::of`] always are; decoded wire layouts may not be —
        // those take the reference path.
        if !self.is_canonical() {
            return self.repeat_naive(count);
        }
        if count == 1 {
            return self.blocks.clone();
        }
        let n = self.blocks.len();
        let (first_off, first_len) = self.blocks[0];
        let (last_off, last_len) = *self.blocks.last().unwrap();
        let fuses = last_off + last_len as i64 == self.extent + first_off;
        if !fuses {
            let mut out = Vec::with_capacity(n * count as usize);
            for i in 0..count {
                let base = i as i64 * self.extent;
                out.extend(self.blocks.iter().map(|&(o, l)| (base + o, l)));
            }
            return out;
        }
        if n == 1 {
            // Every boundary fuses: the whole message is one run.
            return vec![(first_off, count * first_len)];
        }
        // Boundaries fuse but interiors cannot (a fused run that merged
        // further would imply two memory-adjacent blocks inside one
        // instance, contradicting canonical form). Exact shape:
        // interior blocks, then one fused run per boundary.
        let mut out = Vec::with_capacity(n * count as usize - (count as usize - 1));
        out.extend(self.blocks[..n - 1].iter().copied());
        for i in 0..count - 1 {
            let base = i as i64 * self.extent;
            out.push((base + last_off, last_len + first_len));
            let next = base + self.extent;
            out.extend(self.blocks[1..n - 1].iter().map(|&(o, l)| (next + o, l)));
        }
        let tail = (count - 1) as i64 * self.extent;
        out.push((tail + last_off, last_len));
        out
    }

    /// Whether the block list is in the canonical merged form
    /// [`BlockCollector`] produces: positive lengths, no two
    /// consecutive blocks adjacent in memory.
    fn is_canonical(&self) -> bool {
        self.blocks.iter().all(|&(_, l)| l > 0)
            && self
                .blocks
                .windows(2)
                .all(|w| w[0].0 + w[0].1 as i64 != w[1].0)
    }

    /// Reference implementation of [`Self::repeat`]: every block pushed
    /// through the merging [`BlockCollector`]. Kept for equivalence
    /// tests and as the before-side of the hot-path benchmark.
    #[doc(hidden)]
    pub fn repeat_naive(&self, count: u64) -> Vec<(i64, u64)> {
        let mut c = BlockCollector::new();
        for i in 0..count {
            let base = i as i64 * self.extent;
            for &(o, l) in &self.blocks {
                c.push(base + o, l);
            }
        }
        c.into_blocks()
    }

    /// Per-block statistics over `count` instances.
    pub fn stats(&self, count: u64) -> BlockStats {
        BlockStats::from_blocks(&self.repeat(count))
    }

    /// Serializes to the wire format sent in rendezvous replies:
    /// `u64 size | i64 extent | u32 nblocks | (i64 off, u64 len)*`,
    /// little-endian.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(20 + self.blocks.len() * 16);
        v.extend_from_slice(&self.size.to_le_bytes());
        v.extend_from_slice(&self.extent.to_le_bytes());
        v.extend_from_slice(&(self.blocks.len() as u32).to_le_bytes());
        for &(o, l) in &self.blocks {
            v.extend_from_slice(&o.to_le_bytes());
            v.extend_from_slice(&l.to_le_bytes());
        }
        v
    }

    /// Decodes a layout serialized by [`Self::encode`]. Returns `None`
    /// on malformed input.
    pub fn decode(bytes: &[u8]) -> Option<FlatLayout> {
        if bytes.len() < 20 {
            return None;
        }
        let size = u64::from_le_bytes(bytes[0..8].try_into().ok()?);
        let extent = i64::from_le_bytes(bytes[8..16].try_into().ok()?);
        let n = u32::from_le_bytes(bytes[16..20].try_into().ok()?) as usize;
        if bytes.len() != 20 + n * 16 {
            return None;
        }
        let mut blocks = Vec::with_capacity(n);
        let mut total = 0u64;
        for i in 0..n {
            let p = 20 + i * 16;
            let o = i64::from_le_bytes(bytes[p..p + 8].try_into().ok()?);
            let l = u64::from_le_bytes(bytes[p + 8..p + 16].try_into().ok()?);
            total = total.checked_add(l)?;
            blocks.push((o, l));
        }
        if total != size {
            return None;
        }
        Some(FlatLayout {
            blocks,
            size,
            extent,
        })
    }
}

/// Contiguous-block statistics used by adaptive scheme selection (§6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockStats {
    /// Number of contiguous blocks.
    pub count: usize,
    /// Total bytes.
    pub total: u64,
    /// Smallest block.
    pub min: u64,
    /// Largest block.
    pub max: u64,
    /// Mean block size (bytes).
    pub mean: f64,
    /// Median block size (bytes).
    pub median: u64,
}

impl BlockStats {
    /// Computes statistics over a block list.
    pub fn from_blocks(blocks: &[(i64, u64)]) -> BlockStats {
        if blocks.is_empty() {
            return BlockStats {
                count: 0,
                total: 0,
                min: 0,
                max: 0,
                mean: 0.0,
                median: 0,
            };
        }
        let mut lens: Vec<u64> = blocks.iter().map(|&(_, l)| l).collect();
        lens.sort_unstable();
        let total: u64 = lens.iter().sum();
        BlockStats {
            count: lens.len(),
            total,
            min: lens[0],
            max: *lens.last().unwrap(),
            mean: total as f64 / lens.len() as f64,
            median: lens[lens.len() / 2],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_vector() {
        let t = Datatype::vector(3, 2, 4, &Datatype::int()).unwrap();
        let f = t.flat();
        assert_eq!(f.blocks, vec![(0, 8), (16, 8), (32, 8)]);
        assert_eq!(f.size, 24);
    }

    #[test]
    fn repeat_shifts_by_extent() {
        let t = Datatype::vector(2, 1, 2, &Datatype::int()).unwrap();
        // blocks (0,4),(8,4); extent = 12. Instance 1 starts at 12, so
        // its first block (12,4) merges with instance 0's (8,4).
        let f = t.flat();
        assert_eq!(f.repeat(2), vec![(0, 4), (8, 8), (20, 4)]);
    }

    #[test]
    fn repeat_merges_dense_instances() {
        let t = Datatype::contiguous(4, &Datatype::int()).unwrap();
        let f = t.flat();
        assert_eq!(f.repeat(3), vec![(0, 48)]);
    }

    #[test]
    fn repeat_with_resized_gap() {
        let base = Datatype::contiguous(1, &Datatype::int()).unwrap();
        let t = Datatype::resized(&base, 0, 16).unwrap();
        assert_eq!(t.flat().repeat(3), vec![(0, 4), (16, 4), (32, 4)]);
    }

    #[test]
    fn stats_of_uniform_blocks() {
        let t = Datatype::vector(8, 4, 100, &Datatype::int()).unwrap();
        let s = t.flat().stats(1);
        assert_eq!(s.count, 8);
        assert_eq!(s.min, 16);
        assert_eq!(s.max, 16);
        assert_eq!(s.median, 16);
        assert!((s.mean - 16.0).abs() < 1e-9);
        assert_eq!(s.total, 128);
    }

    #[test]
    fn stats_of_mixed_blocks() {
        let t = Datatype::hindexed(&[(1, 0), (4, 100), (2, 1000)], &Datatype::int()).unwrap();
        let s = t.flat().stats(1);
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 4);
        assert_eq!(s.max, 16);
        assert_eq!(s.median, 8);
        assert_eq!(s.total, 28);
    }

    #[test]
    fn stats_empty() {
        let s = BlockStats::from_blocks(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.total, 0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let t = Datatype::hindexed(&[(2, -16), (3, 64)], &Datatype::double()).unwrap();
        let f = t.flat();
        let enc = f.encode();
        let dec = FlatLayout::decode(&enc).unwrap();
        assert_eq!(*f.as_ref(), dec);
    }

    #[test]
    fn decode_rejects_truncated() {
        let t = Datatype::vector(2, 1, 2, &Datatype::int()).unwrap();
        let enc = t.flat().encode();
        assert!(FlatLayout::decode(&enc[..enc.len() - 1]).is_none());
        assert!(FlatLayout::decode(&[]).is_none());
    }

    #[test]
    fn decode_rejects_size_mismatch() {
        let t = Datatype::vector(2, 1, 2, &Datatype::int()).unwrap();
        let mut enc = t.flat().encode();
        enc[0] ^= 0xFF; // corrupt size
        assert!(FlatLayout::decode(&enc).is_none());
    }
}
