#![warn(missing_docs)]
//! MPI derived datatype engine.
//!
//! Implements the datatype machinery the paper's schemes depend on:
//!
//! * [`typ`] — the type constructors of MPI-1 (`contiguous`, `vector`,
//!   `hvector`, `indexed`, `hindexed`, `indexed_block`, `struct`,
//!   `resized`, plus `subarray` built from them) with MPI extent/lb/ub
//!   semantics,
//! * [`dataloop`] — compilation of a type tree into *dataloops*
//!   (Ross/Miller/Gropp, ref [26]): a compact loop representation with
//!   leaf coalescing, used for O(depth) partial traversal,
//! * [`segment`] — **partial datatype processing** (§4.3.1): packing and
//!   unpacking of arbitrary stream-offset ranges, which is what lets
//!   BC-SPUP and RWG-UP start and stop packing at segment boundaries,
//! * [`flat`] — flattening to `<offset, length>` tuple lists (§5.4.2),
//!   block statistics for adaptive scheme selection (§6), and the wire
//!   serialization of layouts sent to the peer in Multi-W,
//! * [`cache`] — the versioned datatype cache (§5.4.2, after Träff et
//!   al., ref [14]): type indices, version bumps on index reuse, and the
//!   sender-side layout cache,
//! * [`plan`] — compiled transfer plans: per-(type, count) precomputed
//!   run lists with prefix-sum resume indexes, shared across every chunk
//!   of a message so the hot path never re-walks the dataloop,
//! * [`kernel`] — specialized copy kernels (contiguous, constant-stride,
//!   two-level blocked, generic) classified from the merged block list
//!   at plan-compile time and executed symmetrically by pack and unpack.
//!
//! All offsets are `i64` (MPI displacements may be negative); a buffer
//! address names the element with offset 0.

pub mod cache;
pub mod canon;
pub mod dataloop;
pub mod flat;
pub mod kernel;
pub mod plan;
pub mod prim;
pub mod segment;
pub mod typ;

pub use cache::{LayoutCache, TypeRegistry};
pub use flat::{BlockStats, FlatLayout};
pub use kernel::CopyKernel;
pub use plan::TransferPlan;
pub use prim::Primitive;
pub use segment::Segment;
pub use typ::{Datatype, TypeError};
