//! Derived datatype constructors and MPI extent semantics.
//!
//! A [`Datatype`] is an immutable, cheaply clonable handle (an `Arc`) to
//! a type tree. Constructors mirror MPI-1: `contiguous`, `vector`,
//! `hvector`, `indexed`, `indexed_block`, `hindexed`, `struct`,
//! `resized`; `subarray` is provided as a convenience built from the
//! core constructors.
//!
//! Every type knows its `size` (bytes of real data), `lb`/`ub`
//! (lower/upper bound of its typemap, possibly negative/overridden by
//! `resized`) and `extent = ub - lb`, which is the stride used when an
//! array of the type is sent (`count > 1`).

use crate::dataloop::Dataloop;
use crate::flat::FlatLayout;
use crate::prim::Primitive;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Errors from datatype construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeError {
    /// A displacement or extent computation overflowed `i64`.
    Overflow,
    /// A constructed type would have negative extent (ub < lb without a
    /// `resized` override), which this implementation does not support.
    NegativeExtent,
    /// `struct_` was called with mismatched array lengths.
    LengthMismatch,
    /// A distribution argument was invalid (`darray`).
    InvalidArgument,
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::Overflow => write!(f, "datatype displacement overflow"),
            TypeError::NegativeExtent => write!(f, "datatype would have negative extent"),
            TypeError::LengthMismatch => write!(f, "struct arrays have different lengths"),
            TypeError::InvalidArgument => write!(f, "invalid distribution argument"),
        }
    }
}

impl std::error::Error for TypeError {}

/// The node kinds of a type tree.
#[derive(Debug)]
pub(crate) enum TypeKind {
    /// A primitive leaf.
    Primitive(Primitive),
    /// `count` children laid out end to end (stride = child extent).
    Contiguous { count: u64, child: Datatype },
    /// `count` blocks of `blocklen` children, block `i` displaced by
    /// `i * stride_bytes`.
    Hvector {
        count: u64,
        blocklen: u64,
        stride_bytes: i64,
        child: Datatype,
    },
    /// Blocks of `(blocklen, byte displacement)` pairs.
    Hindexed {
        blocks: Vec<(u64, i64)>,
        child: Datatype,
    },
    /// Heterogeneous fields: `(blocklen, byte displacement, type)`.
    Struct { fields: Vec<(u64, i64, Datatype)> },
    /// Child with overridden lb/extent.
    Resized { child: Datatype },
}

/// Interior node data. Reached through [`Datatype`] only.
pub(crate) struct TypeNode {
    pub(crate) kind: TypeKind,
    id: u64,
    size: u64,
    lb: i64,
    ub: i64,
    depth: u32,
    loop_cache: OnceLock<Arc<Dataloop>>,
    flat_cache: OnceLock<Arc<FlatLayout>>,
    /// Canonicalization result: `None` once computed means this type
    /// *is* its canonical form (avoids an `Arc` self-cycle).
    canon_cache: OnceLock<Option<Datatype>>,
}

impl fmt::Debug for TypeNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TypeNode")
            .field("kind", &self.kind)
            .field("size", &self.size)
            .field("lb", &self.lb)
            .field("ub", &self.ub)
            .finish()
    }
}

static NEXT_TYPE_ID: AtomicU64 = AtomicU64::new(1);

/// An immutable MPI datatype handle.
#[derive(Clone, Debug)]
pub struct Datatype(pub(crate) Arc<TypeNode>);

fn ck(v: i128) -> Result<i64, TypeError> {
    i64::try_from(v).map_err(|_| TypeError::Overflow)
}

impl Datatype {
    fn build(kind: TypeKind, size: u64, lb: i64, ub: i64, depth: u32) -> Result<Self, TypeError> {
        if ub < lb {
            return Err(TypeError::NegativeExtent);
        }
        Ok(Datatype(Arc::new(TypeNode {
            kind,
            id: NEXT_TYPE_ID.fetch_add(1, Ordering::Relaxed),
            size,
            lb,
            ub,
            depth,
            loop_cache: OnceLock::new(),
            flat_cache: OnceLock::new(),
            canon_cache: OnceLock::new(),
        })))
    }

    /// A primitive type.
    pub fn primitive(p: Primitive) -> Self {
        Self::build(TypeKind::Primitive(p), p.size(), 0, p.size() as i64, 0)
            .expect("primitive types are always valid")
    }

    /// `MPI_BYTE`.
    pub fn byte() -> Self {
        Self::primitive(Primitive::Byte)
    }
    /// `MPI_INT`.
    pub fn int() -> Self {
        Self::primitive(Primitive::Int)
    }
    /// `MPI_FLOAT`.
    pub fn float() -> Self {
        Self::primitive(Primitive::Float)
    }
    /// `MPI_DOUBLE`.
    pub fn double() -> Self {
        Self::primitive(Primitive::Double)
    }

    /// `MPI_Type_contiguous(count, child)`.
    pub fn contiguous(count: u64, child: &Datatype) -> Result<Self, TypeError> {
        let (lb, ub) = if count == 0 {
            (0, 0)
        } else {
            let ext = child.extent() as i128;
            let last = ck((count as i128 - 1) * ext)?;
            span_union(&[(0, child.lb(), child.ub()), (last, child.lb(), child.ub())])?
        };
        Self::build(
            TypeKind::Contiguous {
                count,
                child: child.clone(),
            },
            count * child.size(),
            lb,
            ub,
            child.depth() + 1,
        )
    }

    /// `MPI_Type_vector(count, blocklen, stride, child)` — stride in
    /// units of the child extent.
    ///
    /// ```
    /// use ibdt_datatype::Datatype;
    /// // The paper's motivating type: x columns of a 128 x 4096 int
    /// // array (here x = 4).
    /// let t = Datatype::vector(128, 4, 4096, &Datatype::int()).unwrap();
    /// assert_eq!(t.size(), 128 * 4 * 4);        // data bytes
    /// assert_eq!(t.num_blocks(), 128);          // one block per row
    /// assert!(!t.is_contiguous());
    /// ```
    pub fn vector(
        count: u64,
        blocklen: u64,
        stride: i64,
        child: &Datatype,
    ) -> Result<Self, TypeError> {
        let stride_bytes = ck(stride as i128 * child.extent() as i128)?;
        Self::hvector(count, blocklen, stride_bytes, child)
    }

    /// `MPI_Type_create_hvector(count, blocklen, stride_bytes, child)`.
    pub fn hvector(
        count: u64,
        blocklen: u64,
        stride_bytes: i64,
        child: &Datatype,
    ) -> Result<Self, TypeError> {
        let size = count * blocklen * child.size();
        let (lb, ub) = if count == 0 || blocklen == 0 {
            (0, 0)
        } else {
            let ext = child.extent() as i128;
            let block_last = ck((blocklen as i128 - 1) * ext)?;
            let row_last = ck((count as i128 - 1) * stride_bytes as i128)?;
            // Corners of the displacement lattice suffice: displacements
            // are affine in (i, j) with i in [0, count), j in [0,
            // blocklen), and extents are non-negative.
            span_union(&[
                (0, child.lb(), child.ub()),
                (block_last, child.lb(), child.ub()),
                (row_last, child.lb(), child.ub()),
                (
                    ck(row_last as i128 + block_last as i128)?,
                    child.lb(),
                    child.ub(),
                ),
            ])?
        };
        Self::build(
            TypeKind::Hvector {
                count,
                blocklen,
                stride_bytes,
                child: child.clone(),
            },
            size,
            lb,
            ub,
            child.depth() + 1,
        )
    }

    /// `MPI_Type_indexed(blocklens, displs, child)` — displacements in
    /// units of the child extent.
    pub fn indexed(blocks: &[(u64, i64)], child: &Datatype) -> Result<Self, TypeError> {
        let ext = child.extent() as i128;
        let byte_blocks = blocks
            .iter()
            .map(|&(l, d)| Ok((l, ck(d as i128 * ext)?)))
            .collect::<Result<Vec<_>, TypeError>>()?;
        Self::hindexed(&byte_blocks, child)
    }

    /// `MPI_Type_create_indexed_block(blocklen, displs, child)`.
    pub fn indexed_block(
        blocklen: u64,
        displs: &[i64],
        child: &Datatype,
    ) -> Result<Self, TypeError> {
        let blocks: Vec<(u64, i64)> = displs.iter().map(|&d| (blocklen, d)).collect();
        Self::indexed(&blocks, child)
    }

    /// `MPI_Type_create_hindexed(blocklens, byte displs, child)`.
    pub fn hindexed(blocks: &[(u64, i64)], child: &Datatype) -> Result<Self, TypeError> {
        let mut size = 0u64;
        let mut spans: Vec<(i64, i64, i64)> = Vec::with_capacity(blocks.len() * 2);
        let ext = child.extent() as i128;
        for &(blocklen, displ) in blocks {
            size += blocklen * child.size();
            if blocklen == 0 {
                continue;
            }
            let last = ck(displ as i128 + (blocklen as i128 - 1) * ext)?;
            spans.push((displ, child.lb(), child.ub()));
            spans.push((last, child.lb(), child.ub()));
        }
        let (lb, ub) = if spans.is_empty() {
            (0, 0)
        } else {
            span_union(&spans)?
        };
        Self::build(
            TypeKind::Hindexed {
                blocks: blocks.to_vec(),
                child: child.clone(),
            },
            size,
            lb,
            ub,
            child.depth() + 1,
        )
    }

    /// `MPI_Type_create_struct(blocklens, byte displs, types)`.
    pub fn struct_(fields: &[(u64, i64, Datatype)]) -> Result<Self, TypeError> {
        let mut size = 0u64;
        let mut spans: Vec<(i64, i64, i64)> = Vec::with_capacity(fields.len() * 2);
        let mut depth = 0;
        for (blocklen, displ, ty) in fields {
            size += blocklen * ty.size();
            depth = depth.max(ty.depth());
            if *blocklen == 0 {
                continue;
            }
            let last = ck(*displ as i128 + (*blocklen as i128 - 1) * ty.extent() as i128)?;
            spans.push((*displ, ty.lb(), ty.ub()));
            spans.push((last, ty.lb(), ty.ub()));
        }
        let (lb, ub) = if spans.is_empty() {
            (0, 0)
        } else {
            span_union(&spans)?
        };
        Self::build(
            TypeKind::Struct {
                fields: fields.to_vec(),
            },
            size,
            lb,
            ub,
            depth + 1,
        )
    }

    /// `MPI_Type_create_resized(child, lb, extent)`.
    pub fn resized(child: &Datatype, lb: i64, extent: i64) -> Result<Self, TypeError> {
        if extent < 0 {
            return Err(TypeError::NegativeExtent);
        }
        let ub = lb.checked_add(extent).ok_or(TypeError::Overflow)?;
        Self::build(
            TypeKind::Resized {
                child: child.clone(),
            },
            child.size(),
            lb,
            ub,
            child.depth() + 1,
        )
    }

    /// `MPI_Type_create_subarray` (C order): selects the
    /// `subsizes`-shaped region starting at `starts` out of a
    /// `sizes`-shaped array of `child`. The resulting type is resized to
    /// the full array extent so that `count > 1` strides over whole
    /// arrays, as in MPI.
    pub fn subarray(
        sizes: &[u64],
        subsizes: &[u64],
        starts: &[u64],
        child: &Datatype,
    ) -> Result<Self, TypeError> {
        if sizes.len() != subsizes.len() || sizes.len() != starts.len() || sizes.is_empty() {
            return Err(TypeError::LengthMismatch);
        }
        for d in 0..sizes.len() {
            if starts[d] + subsizes[d] > sizes[d] {
                return Err(TypeError::Overflow);
            }
        }
        let n = sizes.len();
        let e = child.extent() as i128;
        // Row-major: stride of dimension d (bytes between consecutive
        // indices in dim d) is prod(sizes[d+1..]) * extent.
        let mut strides = vec![0i128; n];
        let mut acc = e;
        for d in (0..n).rev() {
            strides[d] = acc;
            acc = acc
                .checked_mul(sizes[d] as i128)
                .ok_or(TypeError::Overflow)?;
        }
        let full_extent = ck(acc)?;
        // Innermost: contiguous run of subsizes[n-1] children.
        let mut t = Datatype::contiguous(subsizes[n - 1], child)?;
        for d in (0..n - 1).rev() {
            t = Datatype::hvector(subsizes[d], 1, ck(strides[d])?, &t)?;
        }
        // Shift to the start corner.
        let mut offset = 0i128;
        for d in 0..n {
            offset += starts[d] as i128 * strides[d];
        }
        let t = Datatype::hindexed(&[(1, ck(offset)?)], &t)?;
        Datatype::resized(&t, 0, full_extent)
    }

    /// `MPI_Type_create_darray` (C order): the datatype selecting, from
    /// a row-major `gsizes`-shaped global array, the elements owned by
    /// `rank` in a `psizes` process grid under per-dimension
    /// [`Distribution`]s. The result is resized to the full global
    /// array, so `count > 1` strides over whole arrays; the typemap is
    /// in local-array (row-major, ascending-index) order as the MPI
    /// standard requires.
    pub fn darray(
        size: u32,
        rank: u32,
        gsizes: &[u64],
        distribs: &[Distribution],
        psizes: &[u32],
        child: &Datatype,
    ) -> Result<Self, TypeError> {
        let n = gsizes.len();
        if n == 0 || distribs.len() != n || psizes.len() != n {
            return Err(TypeError::LengthMismatch);
        }
        if psizes.iter().product::<u32>() != size || rank >= size {
            return Err(TypeError::InvalidArgument);
        }
        // Row-major process-grid coordinates.
        let mut coords = vec![0u32; n];
        let mut rest = rank;
        for i in 0..n {
            let below: u32 = psizes[i + 1..].iter().product();
            coords[i] = rest / below;
            rest %= below;
        }
        // Element stride (in elements) of each dimension, row-major.
        let mut strides = vec![1u64; n];
        for i in (0..n - 1).rev() {
            strides[i] = strides[i + 1]
                .checked_mul(gsizes[i + 1])
                .ok_or(TypeError::Overflow)?;
        }
        let e = child.extent();
        // Build inside-out: start from the element type, then wrap each
        // dimension's owned-index selection around it.
        let mut t = child.clone();
        for i in (0..n).rev() {
            let owned = distribs[i].owned_indices(gsizes[i], psizes[i], coords[i])?;
            let stride_bytes = ck(strides[i] as i128 * e as i128)?;
            // Represent as hindexed over the owned indices; dense runs
            // coalesce in the dataloop, so Block costs nothing extra.
            let blocks: Vec<(u64, i64)> = owned
                .iter()
                .map(|&g| Ok((1u64, ck(g as i128 * stride_bytes as i128)?)))
                .collect::<Result<_, TypeError>>()?;
            t = Datatype::hindexed(&blocks, &t)?;
        }
        let mut total_elems = 1i128;
        for &g in gsizes {
            total_elems = total_elems
                .checked_mul(g as i128)
                .filter(|v| *v <= i64::MAX as i128)
                .ok_or(TypeError::Overflow)?;
        }
        let total = ck(total_elems * e as i128)?;
        Datatype::resized(&t, 0, total)
    }

    /// Unique id of this type object (not structural equality).
    pub fn id(&self) -> u64 {
        self.0.id
    }

    /// Bytes of real data in one instance.
    pub fn size(&self) -> u64 {
        self.0.size
    }

    /// Lower bound of the typemap (bytes, possibly negative).
    pub fn lb(&self) -> i64 {
        self.0.lb
    }

    /// Upper bound of the typemap (bytes).
    pub fn ub(&self) -> i64 {
        self.0.ub
    }

    /// Extent = ub - lb; the stride between consecutive instances.
    pub fn extent(&self) -> i64 {
        self.0.ub - self.0.lb
    }

    /// Tree depth (primitives are 0).
    pub fn depth(&self) -> u32 {
        self.0.depth
    }

    /// The compiled dataloop (built on first use, then cached).
    pub fn dataloop(&self) -> &Arc<Dataloop> {
        self.0
            .loop_cache
            .get_or_init(|| Arc::new(Dataloop::compile(self)))
    }

    /// The flattened `<offset, len>` layout of one instance (cached).
    pub fn flat(&self) -> &Arc<FlatLayout> {
        self.0
            .flat_cache
            .get_or_init(|| Arc::new(FlatLayout::of(self)))
    }

    /// Number of contiguous blocks in one instance after coalescing.
    pub fn num_blocks(&self) -> usize {
        self.flat().blocks.len()
    }

    /// True lower bound: smallest byte offset actually holding data
    /// (`MPI_Type_get_true_extent`). Unlike [`Self::lb`], this is never
    /// moved by `resized`. Zero for empty types.
    pub fn true_lb(&self) -> i64 {
        self.flat()
            .blocks
            .iter()
            .map(|&(o, _)| o)
            .min()
            .unwrap_or(0)
    }

    /// True upper bound: one past the largest byte offset holding data.
    /// Zero for empty types.
    pub fn true_ub(&self) -> i64 {
        self.flat()
            .blocks
            .iter()
            .map(|&(o, l)| o + l as i64)
            .max()
            .unwrap_or(0)
    }

    /// True extent = `true_ub - true_lb`: the memory span of the data.
    pub fn true_extent(&self) -> i64 {
        self.true_ub() - self.true_lb()
    }

    /// True when one instance is a single dense block starting at
    /// offset 0 with extent == size (i.e. behaves like raw bytes).
    pub fn is_contiguous(&self) -> bool {
        self.size() == 0
            || (self.extent() as u64 == self.size()
                && self.lb() == 0
                && self.num_blocks() == 1
                && self.flat().blocks[0] == (0, self.size()))
    }

    pub(crate) fn kind(&self) -> &TypeKind {
        &self.0.kind
    }

    /// The canonical spelling of this layout (see [`crate::canon`]):
    /// every type describing the same merged block list and `(lb, ub)`
    /// bounds resolves to one shared handle, so plan caches keyed on
    /// the canonical id hit across spellings. Returns `self` (same
    /// id) when this type is the first spelling of its layout seen.
    /// Computed once per node, then cached.
    pub fn canonical(&self) -> Datatype {
        match self
            .0
            .canon_cache
            .get_or_init(|| crate::canon::canonical_of(self))
        {
            None => self.clone(),
            Some(c) => c.clone(),
        }
    }

    /// The single primitive this type is built from, when every leaf is
    /// the same primitive (the precondition for element-wise reduction
    /// operations). `None` for mixed structs.
    pub fn uniform_primitive(&self) -> Option<Primitive> {
        match &self.0.kind {
            TypeKind::Primitive(p) => Some(*p),
            TypeKind::Contiguous { child, .. }
            | TypeKind::Hvector { child, .. }
            | TypeKind::Hindexed { child, .. }
            | TypeKind::Resized { child } => child.uniform_primitive(),
            TypeKind::Struct { fields } => {
                let mut out: Option<Primitive> = None;
                for (_, _, t) in fields {
                    let p = t.uniform_primitive()?;
                    match out {
                        None => out = Some(p),
                        Some(q) if q == p => {}
                        Some(_) => return None,
                    }
                }
                out
            }
        }
    }
}

/// Per-dimension distribution for [`Datatype::darray`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// `MPI_DISTRIBUTE_NONE`: the dimension is not distributed.
    None,
    /// `MPI_DISTRIBUTE_BLOCK` with an explicit block size (`None` for
    /// the default `ceil(gsize / psize)`).
    Block(Option<u64>),
    /// `MPI_DISTRIBUTE_CYCLIC` with chunk size `k`.
    Cyclic(u64),
}

impl Distribution {
    /// Global indices along one dimension owned by grid coordinate `c`,
    /// ascending (== local order).
    fn owned_indices(self, gsize: u64, psize: u32, c: u32) -> Result<Vec<u64>, TypeError> {
        let p = psize as u64;
        let c = c as u64;
        match self {
            Distribution::None => {
                if psize != 1 {
                    return Err(TypeError::InvalidArgument);
                }
                Ok((0..gsize).collect())
            }
            Distribution::Block(darg) => {
                let d = match darg {
                    Some(0) => return Err(TypeError::InvalidArgument),
                    Some(d) => d,
                    None => gsize.div_ceil(p),
                };
                if d * p < gsize {
                    return Err(TypeError::InvalidArgument);
                }
                let lo = (c * d).min(gsize);
                let hi = ((c + 1) * d).min(gsize);
                Ok((lo..hi).collect())
            }
            Distribution::Cyclic(k) => {
                if k == 0 {
                    return Err(TypeError::InvalidArgument);
                }
                Ok((0..gsize).filter(|g| (g / k) % p == c).collect())
            }
        }
    }
}

/// Union of `(displacement, child_lb, child_ub)` spans → (lb, ub).
fn span_union(spans: &[(i64, i64, i64)]) -> Result<(i64, i64), TypeError> {
    let mut lb = i128::MAX;
    let mut ub = i128::MIN;
    for &(d, clb, cub) in spans {
        lb = lb.min(d as i128 + clb as i128);
        ub = ub.max(d as i128 + cub as i128);
    }
    Ok((ck(lb)?, ck(ub)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_properties() {
        let t = Datatype::int();
        assert_eq!(t.size(), 4);
        assert_eq!(t.extent(), 4);
        assert_eq!(t.lb(), 0);
        assert!(t.is_contiguous());
        assert_eq!(t.num_blocks(), 1);
    }

    #[test]
    fn contiguous_type() {
        let t = Datatype::contiguous(10, &Datatype::int()).unwrap();
        assert_eq!(t.size(), 40);
        assert_eq!(t.extent(), 40);
        assert!(t.is_contiguous());
        assert_eq!(t.num_blocks(), 1);
    }

    #[test]
    fn empty_contiguous() {
        let t = Datatype::contiguous(0, &Datatype::int()).unwrap();
        assert_eq!(t.size(), 0);
        assert_eq!(t.extent(), 0);
        assert!(t.is_contiguous());
    }

    #[test]
    fn vector_extent_and_size() {
        // The paper's example: MPI_Type_vector(128, x, 4096, MPI_INT).
        let x = 4;
        let t = Datatype::vector(128, x, 4096, &Datatype::int()).unwrap();
        assert_eq!(t.size(), 128 * x * 4);
        // extent: last block starts at 127*4096*4, has x ints.
        assert_eq!(t.extent(), (127 * 4096 + x as i64) * 4);
        assert!(!t.is_contiguous());
        assert_eq!(t.num_blocks(), 128);
    }

    #[test]
    fn vector_with_stride_equal_blocklen_is_contiguous() {
        let t = Datatype::vector(8, 4, 4, &Datatype::int()).unwrap();
        assert_eq!(t.size(), 128);
        assert_eq!(t.extent(), 128);
        assert_eq!(t.num_blocks(), 1);
        assert!(t.is_contiguous());
    }

    #[test]
    fn negative_stride_vector() {
        let t = Datatype::vector(3, 1, -2, &Datatype::int()).unwrap();
        // blocks at 0, -8, -16 bytes.
        assert_eq!(t.lb(), -16);
        assert_eq!(t.ub(), 4);
        assert_eq!(t.extent(), 20);
        assert_eq!(t.size(), 12);
    }

    #[test]
    fn indexed_blocks() {
        let t = Datatype::indexed(&[(2, 0), (3, 10)], &Datatype::int()).unwrap();
        assert_eq!(t.size(), 20);
        assert_eq!(t.lb(), 0);
        assert_eq!(t.ub(), (10 + 3) * 4);
        assert_eq!(t.num_blocks(), 2);
    }

    #[test]
    fn indexed_block_constructor() {
        let t = Datatype::indexed_block(2, &[0, 8, 4], &Datatype::int()).unwrap();
        assert_eq!(t.size(), 24);
        assert_eq!(t.ub(), 40);
    }

    #[test]
    fn hindexed_with_negative_displacement() {
        let t = Datatype::hindexed(&[(1, -8), (1, 8)], &Datatype::double()).unwrap();
        assert_eq!(t.lb(), -8);
        assert_eq!(t.ub(), 16);
        assert_eq!(t.size(), 16);
    }

    #[test]
    fn struct_mixed_fields() {
        // { int[2] at 0, double at 16 }
        let t = Datatype::struct_(&[(2, 0, Datatype::int()), (1, 16, Datatype::double())]).unwrap();
        assert_eq!(t.size(), 16);
        assert_eq!(t.lb(), 0);
        assert_eq!(t.ub(), 24);
        assert_eq!(t.num_blocks(), 2);
    }

    #[test]
    fn resized_overrides_bounds() {
        let base = Datatype::contiguous(3, &Datatype::int()).unwrap();
        let t = Datatype::resized(&base, -4, 32).unwrap();
        assert_eq!(t.lb(), -4);
        assert_eq!(t.ub(), 28);
        assert_eq!(t.extent(), 32);
        assert_eq!(t.size(), 12);
        assert!(!t.is_contiguous());
    }

    #[test]
    fn nested_vector_of_struct() {
        let s = Datatype::struct_(&[(1, 0, Datatype::int()), (1, 8, Datatype::int())]).unwrap();
        let v = Datatype::hvector(4, 1, 16, &s).unwrap();
        assert_eq!(v.size(), 32);
        assert_eq!(v.num_blocks(), 8);
        assert_eq!(v.ub(), 3 * 16 + 12);
    }

    #[test]
    fn subarray_2d() {
        // 4x6 int array, take 2x3 sub-block at (1,2).
        let t = Datatype::subarray(&[4, 6], &[2, 3], &[1, 2], &Datatype::int()).unwrap();
        assert_eq!(t.size(), 2 * 3 * 4);
        assert_eq!(t.extent(), 4 * 6 * 4); // resized to full array
        let blocks = &t.flat().blocks;
        // rows at (1,2) and (2,2): offsets (1*6+2)*4=32 and (2*6+2)*4=56
        assert_eq!(blocks.as_slice(), &[(32, 12), (56, 12)]);
    }

    #[test]
    fn subarray_full_is_whole_array() {
        let t = Datatype::subarray(&[3, 3], &[3, 3], &[0, 0], &Datatype::int()).unwrap();
        assert_eq!(t.size(), 36);
        assert_eq!(t.num_blocks(), 1);
    }

    #[test]
    fn subarray_bad_bounds_rejected() {
        assert!(Datatype::subarray(&[4], &[3], &[2], &Datatype::int()).is_err());
        assert!(Datatype::subarray(&[4, 4], &[2], &[0], &Datatype::int()).is_err());
    }

    #[test]
    fn overflow_detected() {
        let t = Datatype::int();
        assert_eq!(
            Datatype::hvector(2, 1, i64::MAX, &t)
                .and_then(|v| Datatype::hvector(2, 1, i64::MAX, &v))
                .err(),
            Some(TypeError::Overflow)
        );
    }

    #[test]
    fn uniform_primitive_detection() {
        assert_eq!(Datatype::int().uniform_primitive(), Some(Primitive::Int));
        let v = Datatype::vector(4, 2, 8, &Datatype::double()).unwrap();
        assert_eq!(v.uniform_primitive(), Some(Primitive::Double));
        let mixed =
            Datatype::struct_(&[(1, 0, Datatype::int()), (1, 8, Datatype::double())]).unwrap();
        assert_eq!(mixed.uniform_primitive(), None);
        let same = Datatype::struct_(&[(1, 0, Datatype::int()), (2, 8, Datatype::int())]).unwrap();
        assert_eq!(same.uniform_primitive(), Some(Primitive::Int));
    }

    #[test]
    fn ids_are_unique() {
        let a = Datatype::int();
        let b = Datatype::int();
        assert_ne!(a.id(), b.id());
        let c = a.clone();
        assert_eq!(a.id(), c.id());
    }
}
