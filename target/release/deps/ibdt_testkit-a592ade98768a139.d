/root/repo/target/release/deps/ibdt_testkit-a592ade98768a139.d: crates/testkit/src/lib.rs

/root/repo/target/release/deps/ibdt_testkit-a592ade98768a139: crates/testkit/src/lib.rs

crates/testkit/src/lib.rs:
