/root/repo/target/release/deps/collectives-b3e44edc409cd84f.d: crates/mpicore/tests/collectives.rs

/root/repo/target/release/deps/collectives-b3e44edc409cd84f: crates/mpicore/tests/collectives.rs

crates/mpicore/tests/collectives.rs:
