/root/repo/target/release/deps/figures_smoke-c532e9e57de5f98a.d: crates/bench/tests/figures_smoke.rs

/root/repo/target/release/deps/figures_smoke-c532e9e57de5f98a: crates/bench/tests/figures_smoke.rs

crates/bench/tests/figures_smoke.rs:
