/root/repo/target/release/deps/proptests-1a2368dd5370799a.d: crates/memreg/tests/proptests.rs

/root/repo/target/release/deps/proptests-1a2368dd5370799a: crates/memreg/tests/proptests.rs

crates/memreg/tests/proptests.rs:
