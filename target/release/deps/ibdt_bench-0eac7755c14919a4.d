/root/repo/target/release/deps/ibdt_bench-0eac7755c14919a4.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libibdt_bench-0eac7755c14919a4.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libibdt_bench-0eac7755c14919a4.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/table.rs:
