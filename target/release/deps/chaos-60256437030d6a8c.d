/root/repo/target/release/deps/chaos-60256437030d6a8c.d: tests/chaos.rs

/root/repo/target/release/deps/chaos-60256437030d6a8c: tests/chaos.rs

tests/chaos.rs:
