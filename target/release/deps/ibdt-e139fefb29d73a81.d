/root/repo/target/release/deps/ibdt-e139fefb29d73a81.d: src/lib.rs

/root/repo/target/release/deps/libibdt-e139fefb29d73a81.rlib: src/lib.rs

/root/repo/target/release/deps/libibdt-e139fefb29d73a81.rmeta: src/lib.rs

src/lib.rs:
