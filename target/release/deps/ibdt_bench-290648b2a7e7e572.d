/root/repo/target/release/deps/ibdt_bench-290648b2a7e7e572.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/table.rs

/root/repo/target/release/deps/ibdt_bench-290648b2a7e7e572: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/table.rs:
