/root/repo/target/release/deps/errors-3d0c0b304101de9e.d: crates/mpicore/tests/errors.rs

/root/repo/target/release/deps/errors-3d0c0b304101de9e: crates/mpicore/tests/errors.rs

crates/mpicore/tests/errors.rs:
