/root/repo/target/release/deps/ibdt_datatype-aa5456c35739d4e8.d: crates/datatype/src/lib.rs crates/datatype/src/cache.rs crates/datatype/src/dataloop.rs crates/datatype/src/flat.rs crates/datatype/src/plan.rs crates/datatype/src/prim.rs crates/datatype/src/segment.rs crates/datatype/src/typ.rs

/root/repo/target/release/deps/libibdt_datatype-aa5456c35739d4e8.rlib: crates/datatype/src/lib.rs crates/datatype/src/cache.rs crates/datatype/src/dataloop.rs crates/datatype/src/flat.rs crates/datatype/src/plan.rs crates/datatype/src/prim.rs crates/datatype/src/segment.rs crates/datatype/src/typ.rs

/root/repo/target/release/deps/libibdt_datatype-aa5456c35739d4e8.rmeta: crates/datatype/src/lib.rs crates/datatype/src/cache.rs crates/datatype/src/dataloop.rs crates/datatype/src/flat.rs crates/datatype/src/plan.rs crates/datatype/src/prim.rs crates/datatype/src/segment.rs crates/datatype/src/typ.rs

crates/datatype/src/lib.rs:
crates/datatype/src/cache.rs:
crates/datatype/src/dataloop.rs:
crates/datatype/src/flat.rs:
crates/datatype/src/plan.rs:
crates/datatype/src/prim.rs:
crates/datatype/src/segment.rs:
crates/datatype/src/typ.rs:
