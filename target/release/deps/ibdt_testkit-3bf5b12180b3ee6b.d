/root/repo/target/release/deps/ibdt_testkit-3bf5b12180b3ee6b.d: crates/testkit/src/lib.rs

/root/repo/target/release/deps/libibdt_testkit-3bf5b12180b3ee6b.rlib: crates/testkit/src/lib.rs

/root/repo/target/release/deps/libibdt_testkit-3bf5b12180b3ee6b.rmeta: crates/testkit/src/lib.rs

crates/testkit/src/lib.rs:
