/root/repo/target/release/deps/ibdt_datatype-e062abe59294f629.d: crates/datatype/src/lib.rs crates/datatype/src/cache.rs crates/datatype/src/dataloop.rs crates/datatype/src/flat.rs crates/datatype/src/plan.rs crates/datatype/src/prim.rs crates/datatype/src/segment.rs crates/datatype/src/typ.rs

/root/repo/target/release/deps/ibdt_datatype-e062abe59294f629: crates/datatype/src/lib.rs crates/datatype/src/cache.rs crates/datatype/src/dataloop.rs crates/datatype/src/flat.rs crates/datatype/src/plan.rs crates/datatype/src/prim.rs crates/datatype/src/segment.rs crates/datatype/src/typ.rs

crates/datatype/src/lib.rs:
crates/datatype/src/cache.rs:
crates/datatype/src/dataloop.rs:
crates/datatype/src/flat.rs:
crates/datatype/src/plan.rs:
crates/datatype/src/prim.rs:
crates/datatype/src/segment.rs:
crates/datatype/src/typ.rs:
