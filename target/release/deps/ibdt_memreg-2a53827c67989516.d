/root/repo/target/release/deps/ibdt_memreg-2a53827c67989516.d: crates/memreg/src/lib.rs crates/memreg/src/addr.rs crates/memreg/src/cache.rs crates/memreg/src/cost.rs crates/memreg/src/error.rs crates/memreg/src/ogr.rs crates/memreg/src/table.rs

/root/repo/target/release/deps/libibdt_memreg-2a53827c67989516.rlib: crates/memreg/src/lib.rs crates/memreg/src/addr.rs crates/memreg/src/cache.rs crates/memreg/src/cost.rs crates/memreg/src/error.rs crates/memreg/src/ogr.rs crates/memreg/src/table.rs

/root/repo/target/release/deps/libibdt_memreg-2a53827c67989516.rmeta: crates/memreg/src/lib.rs crates/memreg/src/addr.rs crates/memreg/src/cache.rs crates/memreg/src/cost.rs crates/memreg/src/error.rs crates/memreg/src/ogr.rs crates/memreg/src/table.rs

crates/memreg/src/lib.rs:
crates/memreg/src/addr.rs:
crates/memreg/src/cache.rs:
crates/memreg/src/cost.rs:
crates/memreg/src/error.rs:
crates/memreg/src/ogr.rs:
crates/memreg/src/table.rs:
