/root/repo/target/release/deps/proptests-2869e020fffc2c2d.d: crates/ibsim/tests/proptests.rs

/root/repo/target/release/deps/proptests-2869e020fffc2c2d: crates/ibsim/tests/proptests.rs

crates/ibsim/tests/proptests.rs:
