/root/repo/target/release/deps/random_transfers-3787f05c486f37a4.d: tests/random_transfers.rs

/root/repo/target/release/deps/random_transfers-3787f05c486f37a4: tests/random_transfers.rs

tests/random_transfers.rs:
