/root/repo/target/release/deps/timeline-231ae6f68a5d3726.d: crates/bench/src/bin/timeline.rs

/root/repo/target/release/deps/timeline-231ae6f68a5d3726: crates/bench/src/bin/timeline.rs

crates/bench/src/bin/timeline.rs:
