/root/repo/target/release/deps/rma-a9b0e8cbe8160745.d: crates/mpicore/tests/rma.rs

/root/repo/target/release/deps/rma-a9b0e8cbe8160745: crates/mpicore/tests/rma.rs

crates/mpicore/tests/rma.rs:
