/root/repo/target/release/deps/proptests-f5c07fe7363f1c56.d: crates/datatype/tests/proptests.rs

/root/repo/target/release/deps/proptests-f5c07fe7363f1c56: crates/datatype/tests/proptests.rs

crates/datatype/tests/proptests.rs:
