/root/repo/target/release/deps/figures-8e315127b7c89fef.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-8e315127b7c89fef: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
