/root/repo/target/release/deps/timeline-2804d21b3f70251f.d: crates/bench/src/bin/timeline.rs

/root/repo/target/release/deps/timeline-2804d21b3f70251f: crates/bench/src/bin/timeline.rs

crates/bench/src/bin/timeline.rs:
