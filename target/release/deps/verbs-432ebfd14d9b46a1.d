/root/repo/target/release/deps/verbs-432ebfd14d9b46a1.d: crates/ibsim/tests/verbs.rs

/root/repo/target/release/deps/verbs-432ebfd14d9b46a1: crates/ibsim/tests/verbs.rs

crates/ibsim/tests/verbs.rs:
