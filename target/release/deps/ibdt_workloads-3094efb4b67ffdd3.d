/root/repo/target/release/deps/ibdt_workloads-3094efb4b67ffdd3.d: crates/workloads/src/lib.rs crates/workloads/src/drivers.rs crates/workloads/src/structdt.rs crates/workloads/src/sweep.rs crates/workloads/src/vector.rs

/root/repo/target/release/deps/ibdt_workloads-3094efb4b67ffdd3: crates/workloads/src/lib.rs crates/workloads/src/drivers.rs crates/workloads/src/structdt.rs crates/workloads/src/sweep.rs crates/workloads/src/vector.rs

crates/workloads/src/lib.rs:
crates/workloads/src/drivers.rs:
crates/workloads/src/structdt.rs:
crates/workloads/src/sweep.rs:
crates/workloads/src/vector.rs:
