/root/repo/target/release/deps/paper_claims-2840bda20460e47e.d: tests/paper_claims.rs

/root/repo/target/release/deps/paper_claims-2840bda20460e47e: tests/paper_claims.rs

tests/paper_claims.rs:
