/root/repo/target/release/deps/darray-4cf24a7a6cb3f7bb.d: crates/datatype/tests/darray.rs

/root/repo/target/release/deps/darray-4cf24a7a6cb3f7bb: crates/datatype/tests/darray.rs

crates/datatype/tests/darray.rs:
