/root/repo/target/release/deps/proptests-8556eebcd8ddcb77.d: crates/simcore/tests/proptests.rs

/root/repo/target/release/deps/proptests-8556eebcd8ddcb77: crates/simcore/tests/proptests.rs

crates/simcore/tests/proptests.rs:
