/root/repo/target/release/deps/plan_equivalence-534b9ff5eb389caa.d: tests/plan_equivalence.rs

/root/repo/target/release/deps/plan_equivalence-534b9ff5eb389caa: tests/plan_equivalence.rs

tests/plan_equivalence.rs:
