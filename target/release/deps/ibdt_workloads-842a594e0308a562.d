/root/repo/target/release/deps/ibdt_workloads-842a594e0308a562.d: crates/workloads/src/lib.rs crates/workloads/src/drivers.rs crates/workloads/src/structdt.rs crates/workloads/src/sweep.rs crates/workloads/src/vector.rs

/root/repo/target/release/deps/libibdt_workloads-842a594e0308a562.rlib: crates/workloads/src/lib.rs crates/workloads/src/drivers.rs crates/workloads/src/structdt.rs crates/workloads/src/sweep.rs crates/workloads/src/vector.rs

/root/repo/target/release/deps/libibdt_workloads-842a594e0308a562.rmeta: crates/workloads/src/lib.rs crates/workloads/src/drivers.rs crates/workloads/src/structdt.rs crates/workloads/src/sweep.rs crates/workloads/src/vector.rs

crates/workloads/src/lib.rs:
crates/workloads/src/drivers.rs:
crates/workloads/src/structdt.rs:
crates/workloads/src/sweep.rs:
crates/workloads/src/vector.rs:
