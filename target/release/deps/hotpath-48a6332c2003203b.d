/root/repo/target/release/deps/hotpath-48a6332c2003203b.d: crates/bench/src/bin/hotpath.rs

/root/repo/target/release/deps/hotpath-48a6332c2003203b: crates/bench/src/bin/hotpath.rs

crates/bench/src/bin/hotpath.rs:
