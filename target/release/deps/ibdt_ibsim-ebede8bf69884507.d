/root/repo/target/release/deps/ibdt_ibsim-ebede8bf69884507.d: crates/ibsim/src/lib.rs crates/ibsim/src/fabric.rs crates/ibsim/src/fault.rs crates/ibsim/src/model.rs crates/ibsim/src/wr.rs

/root/repo/target/release/deps/libibdt_ibsim-ebede8bf69884507.rlib: crates/ibsim/src/lib.rs crates/ibsim/src/fabric.rs crates/ibsim/src/fault.rs crates/ibsim/src/model.rs crates/ibsim/src/wr.rs

/root/repo/target/release/deps/libibdt_ibsim-ebede8bf69884507.rmeta: crates/ibsim/src/lib.rs crates/ibsim/src/fabric.rs crates/ibsim/src/fault.rs crates/ibsim/src/model.rs crates/ibsim/src/wr.rs

crates/ibsim/src/lib.rs:
crates/ibsim/src/fabric.rs:
crates/ibsim/src/fault.rs:
crates/ibsim/src/model.rs:
crates/ibsim/src/wr.rs:
