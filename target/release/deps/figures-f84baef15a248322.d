/root/repo/target/release/deps/figures-f84baef15a248322.d: crates/bench/src/bin/figures.rs

/root/repo/target/release/deps/figures-f84baef15a248322: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
