/root/repo/target/release/deps/ibdt_simcore-406cc61130c0ac6d.d: crates/simcore/src/lib.rs crates/simcore/src/engine.rs crates/simcore/src/queue.rs crates/simcore/src/resource.rs crates/simcore/src/time.rs crates/simcore/src/trace.rs

/root/repo/target/release/deps/libibdt_simcore-406cc61130c0ac6d.rlib: crates/simcore/src/lib.rs crates/simcore/src/engine.rs crates/simcore/src/queue.rs crates/simcore/src/resource.rs crates/simcore/src/time.rs crates/simcore/src/trace.rs

/root/repo/target/release/deps/libibdt_simcore-406cc61130c0ac6d.rmeta: crates/simcore/src/lib.rs crates/simcore/src/engine.rs crates/simcore/src/queue.rs crates/simcore/src/resource.rs crates/simcore/src/time.rs crates/simcore/src/trace.rs

crates/simcore/src/lib.rs:
crates/simcore/src/engine.rs:
crates/simcore/src/queue.rs:
crates/simcore/src/resource.rs:
crates/simcore/src/time.rs:
crates/simcore/src/trace.rs:
