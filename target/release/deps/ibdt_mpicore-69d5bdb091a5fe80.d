/root/repo/target/release/deps/ibdt_mpicore-69d5bdb091a5fe80.d: crates/mpicore/src/lib.rs crates/mpicore/src/cluster.rs crates/mpicore/src/coll.rs crates/mpicore/src/config.rs crates/mpicore/src/error.rs crates/mpicore/src/msg.rs crates/mpicore/src/plan.rs crates/mpicore/src/pool.rs crates/mpicore/src/progress.rs crates/mpicore/src/rank.rs crates/mpicore/src/rma.rs crates/mpicore/src/stats.rs

/root/repo/target/release/deps/ibdt_mpicore-69d5bdb091a5fe80: crates/mpicore/src/lib.rs crates/mpicore/src/cluster.rs crates/mpicore/src/coll.rs crates/mpicore/src/config.rs crates/mpicore/src/error.rs crates/mpicore/src/msg.rs crates/mpicore/src/plan.rs crates/mpicore/src/pool.rs crates/mpicore/src/progress.rs crates/mpicore/src/rank.rs crates/mpicore/src/rma.rs crates/mpicore/src/stats.rs

crates/mpicore/src/lib.rs:
crates/mpicore/src/cluster.rs:
crates/mpicore/src/coll.rs:
crates/mpicore/src/config.rs:
crates/mpicore/src/error.rs:
crates/mpicore/src/msg.rs:
crates/mpicore/src/plan.rs:
crates/mpicore/src/pool.rs:
crates/mpicore/src/progress.rs:
crates/mpicore/src/rank.rs:
crates/mpicore/src/rma.rs:
crates/mpicore/src/stats.rs:
