/root/repo/target/release/deps/ibdt_simcore-1e1d6c0d06c8c604.d: crates/simcore/src/lib.rs crates/simcore/src/engine.rs crates/simcore/src/queue.rs crates/simcore/src/resource.rs crates/simcore/src/time.rs crates/simcore/src/trace.rs

/root/repo/target/release/deps/ibdt_simcore-1e1d6c0d06c8c604: crates/simcore/src/lib.rs crates/simcore/src/engine.rs crates/simcore/src/queue.rs crates/simcore/src/resource.rs crates/simcore/src/time.rs crates/simcore/src/trace.rs

crates/simcore/src/lib.rs:
crates/simcore/src/engine.rs:
crates/simcore/src/queue.rs:
crates/simcore/src/resource.rs:
crates/simcore/src/time.rs:
crates/simcore/src/trace.rs:
