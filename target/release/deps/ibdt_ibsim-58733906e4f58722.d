/root/repo/target/release/deps/ibdt_ibsim-58733906e4f58722.d: crates/ibsim/src/lib.rs crates/ibsim/src/fabric.rs crates/ibsim/src/fault.rs crates/ibsim/src/model.rs crates/ibsim/src/wr.rs

/root/repo/target/release/deps/ibdt_ibsim-58733906e4f58722: crates/ibsim/src/lib.rs crates/ibsim/src/fabric.rs crates/ibsim/src/fault.rs crates/ibsim/src/model.rs crates/ibsim/src/wr.rs

crates/ibsim/src/lib.rs:
crates/ibsim/src/fabric.rs:
crates/ibsim/src/fault.rs:
crates/ibsim/src/model.rs:
crates/ibsim/src/wr.rs:
