/root/repo/target/release/deps/features-eba62128124a9b77.d: crates/mpicore/tests/features.rs

/root/repo/target/release/deps/features-eba62128124a9b77: crates/mpicore/tests/features.rs

crates/mpicore/tests/features.rs:
