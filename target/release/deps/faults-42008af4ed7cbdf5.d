/root/repo/target/release/deps/faults-42008af4ed7cbdf5.d: crates/ibsim/tests/faults.rs

/root/repo/target/release/deps/faults-42008af4ed7cbdf5: crates/ibsim/tests/faults.rs

crates/ibsim/tests/faults.rs:
