/root/repo/target/release/deps/ibdt-438cfc04c03bd015.d: src/lib.rs

/root/repo/target/release/deps/ibdt-438cfc04c03bd015: src/lib.rs

src/lib.rs:
