/root/repo/target/release/deps/ibdt_memreg-31226ff7ea0a85c6.d: crates/memreg/src/lib.rs crates/memreg/src/addr.rs crates/memreg/src/cache.rs crates/memreg/src/cost.rs crates/memreg/src/error.rs crates/memreg/src/ogr.rs crates/memreg/src/table.rs

/root/repo/target/release/deps/ibdt_memreg-31226ff7ea0a85c6: crates/memreg/src/lib.rs crates/memreg/src/addr.rs crates/memreg/src/cache.rs crates/memreg/src/cost.rs crates/memreg/src/error.rs crates/memreg/src/ogr.rs crates/memreg/src/table.rs

crates/memreg/src/lib.rs:
crates/memreg/src/addr.rs:
crates/memreg/src/cache.rs:
crates/memreg/src/cost.rs:
crates/memreg/src/error.rs:
crates/memreg/src/ogr.rs:
crates/memreg/src/table.rs:
