/root/repo/target/release/deps/schemes-8b3e2fc771986c6e.d: crates/mpicore/tests/schemes.rs

/root/repo/target/release/deps/schemes-8b3e2fc771986c6e: crates/mpicore/tests/schemes.rs

crates/mpicore/tests/schemes.rs:
