/root/repo/target/release/libibdt_testkit.rlib: /root/repo/crates/testkit/src/lib.rs
