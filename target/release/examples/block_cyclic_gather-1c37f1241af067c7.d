/root/repo/target/release/examples/block_cyclic_gather-1c37f1241af067c7.d: examples/block_cyclic_gather.rs

/root/repo/target/release/examples/block_cyclic_gather-1c37f1241af067c7: examples/block_cyclic_gather.rs

examples/block_cyclic_gather.rs:
