/root/repo/target/release/examples/scheme_advisor-d2cef79075db3f83.d: examples/scheme_advisor.rs

/root/repo/target/release/examples/scheme_advisor-d2cef79075db3f83: examples/scheme_advisor.rs

examples/scheme_advisor.rs:
