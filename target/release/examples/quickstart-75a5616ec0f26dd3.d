/root/repo/target/release/examples/quickstart-75a5616ec0f26dd3.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-75a5616ec0f26dd3: examples/quickstart.rs

examples/quickstart.rs:
