/root/repo/target/release/examples/one_sided-254358fde0c0185a.d: examples/one_sided.rs

/root/repo/target/release/examples/one_sided-254358fde0c0185a: examples/one_sided.rs

examples/one_sided.rs:
