/root/repo/target/release/examples/transpose-3d1ac1b9adb02abd.d: examples/transpose.rs

/root/repo/target/release/examples/transpose-3d1ac1b9adb02abd: examples/transpose.rs

examples/transpose.rs:
