/root/repo/target/release/examples/_verify_tmp-9afe6b7807d2224c.d: examples/_verify_tmp.rs

/root/repo/target/release/examples/_verify_tmp-9afe6b7807d2224c: examples/_verify_tmp.rs

examples/_verify_tmp.rs:
