/root/repo/target/release/examples/halo_exchange-af805c34af395113.d: examples/halo_exchange.rs

/root/repo/target/release/examples/halo_exchange-af805c34af395113: examples/halo_exchange.rs

examples/halo_exchange.rs:
