/root/repo/target/debug/libibdt_testkit.rlib: /root/repo/crates/testkit/src/lib.rs
