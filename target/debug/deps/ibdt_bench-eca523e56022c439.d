/root/repo/target/debug/deps/ibdt_bench-eca523e56022c439.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libibdt_bench-eca523e56022c439.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/table.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
