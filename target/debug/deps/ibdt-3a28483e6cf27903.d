/root/repo/target/debug/deps/ibdt-3a28483e6cf27903.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libibdt-3a28483e6cf27903.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
