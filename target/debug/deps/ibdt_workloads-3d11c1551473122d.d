/root/repo/target/debug/deps/ibdt_workloads-3d11c1551473122d.d: crates/workloads/src/lib.rs crates/workloads/src/drivers.rs crates/workloads/src/structdt.rs crates/workloads/src/sweep.rs crates/workloads/src/vector.rs

/root/repo/target/debug/deps/ibdt_workloads-3d11c1551473122d: crates/workloads/src/lib.rs crates/workloads/src/drivers.rs crates/workloads/src/structdt.rs crates/workloads/src/sweep.rs crates/workloads/src/vector.rs

crates/workloads/src/lib.rs:
crates/workloads/src/drivers.rs:
crates/workloads/src/structdt.rs:
crates/workloads/src/sweep.rs:
crates/workloads/src/vector.rs:
