/root/repo/target/debug/deps/paper_claims-c660e20167bd9930.d: tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-c660e20167bd9930: tests/paper_claims.rs

tests/paper_claims.rs:
