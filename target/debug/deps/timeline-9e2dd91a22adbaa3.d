/root/repo/target/debug/deps/timeline-9e2dd91a22adbaa3.d: crates/bench/src/bin/timeline.rs

/root/repo/target/debug/deps/timeline-9e2dd91a22adbaa3: crates/bench/src/bin/timeline.rs

crates/bench/src/bin/timeline.rs:
