/root/repo/target/debug/deps/ibdt_datatype-67e554d2fe3a9c42.d: crates/datatype/src/lib.rs crates/datatype/src/cache.rs crates/datatype/src/dataloop.rs crates/datatype/src/flat.rs crates/datatype/src/plan.rs crates/datatype/src/prim.rs crates/datatype/src/segment.rs crates/datatype/src/typ.rs Cargo.toml

/root/repo/target/debug/deps/libibdt_datatype-67e554d2fe3a9c42.rmeta: crates/datatype/src/lib.rs crates/datatype/src/cache.rs crates/datatype/src/dataloop.rs crates/datatype/src/flat.rs crates/datatype/src/plan.rs crates/datatype/src/prim.rs crates/datatype/src/segment.rs crates/datatype/src/typ.rs Cargo.toml

crates/datatype/src/lib.rs:
crates/datatype/src/cache.rs:
crates/datatype/src/dataloop.rs:
crates/datatype/src/flat.rs:
crates/datatype/src/plan.rs:
crates/datatype/src/prim.rs:
crates/datatype/src/segment.rs:
crates/datatype/src/typ.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
