/root/repo/target/debug/deps/schemes-dfcb35bf0b5e6155.d: crates/mpicore/tests/schemes.rs Cargo.toml

/root/repo/target/debug/deps/libschemes-dfcb35bf0b5e6155.rmeta: crates/mpicore/tests/schemes.rs Cargo.toml

crates/mpicore/tests/schemes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
