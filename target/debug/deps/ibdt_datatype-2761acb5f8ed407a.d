/root/repo/target/debug/deps/ibdt_datatype-2761acb5f8ed407a.d: crates/datatype/src/lib.rs crates/datatype/src/cache.rs crates/datatype/src/dataloop.rs crates/datatype/src/flat.rs crates/datatype/src/plan.rs crates/datatype/src/prim.rs crates/datatype/src/segment.rs crates/datatype/src/typ.rs

/root/repo/target/debug/deps/ibdt_datatype-2761acb5f8ed407a: crates/datatype/src/lib.rs crates/datatype/src/cache.rs crates/datatype/src/dataloop.rs crates/datatype/src/flat.rs crates/datatype/src/plan.rs crates/datatype/src/prim.rs crates/datatype/src/segment.rs crates/datatype/src/typ.rs

crates/datatype/src/lib.rs:
crates/datatype/src/cache.rs:
crates/datatype/src/dataloop.rs:
crates/datatype/src/flat.rs:
crates/datatype/src/plan.rs:
crates/datatype/src/prim.rs:
crates/datatype/src/segment.rs:
crates/datatype/src/typ.rs:
