/root/repo/target/debug/deps/ibdt_bench-361d73afbf3b01c4.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/ibdt_bench-361d73afbf3b01c4: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/table.rs:
