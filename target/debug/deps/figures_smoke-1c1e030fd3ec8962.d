/root/repo/target/debug/deps/figures_smoke-1c1e030fd3ec8962.d: crates/bench/tests/figures_smoke.rs Cargo.toml

/root/repo/target/debug/deps/libfigures_smoke-1c1e030fd3ec8962.rmeta: crates/bench/tests/figures_smoke.rs Cargo.toml

crates/bench/tests/figures_smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
