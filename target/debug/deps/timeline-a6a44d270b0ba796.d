/root/repo/target/debug/deps/timeline-a6a44d270b0ba796.d: crates/bench/src/bin/timeline.rs Cargo.toml

/root/repo/target/debug/deps/libtimeline-a6a44d270b0ba796.rmeta: crates/bench/src/bin/timeline.rs Cargo.toml

crates/bench/src/bin/timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
