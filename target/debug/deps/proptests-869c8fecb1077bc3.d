/root/repo/target/debug/deps/proptests-869c8fecb1077bc3.d: crates/ibsim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-869c8fecb1077bc3: crates/ibsim/tests/proptests.rs

crates/ibsim/tests/proptests.rs:
