/root/repo/target/debug/deps/ibdt_datatype-4856fc2f1639a7b0.d: crates/datatype/src/lib.rs crates/datatype/src/cache.rs crates/datatype/src/dataloop.rs crates/datatype/src/flat.rs crates/datatype/src/plan.rs crates/datatype/src/prim.rs crates/datatype/src/segment.rs crates/datatype/src/typ.rs

/root/repo/target/debug/deps/libibdt_datatype-4856fc2f1639a7b0.rlib: crates/datatype/src/lib.rs crates/datatype/src/cache.rs crates/datatype/src/dataloop.rs crates/datatype/src/flat.rs crates/datatype/src/plan.rs crates/datatype/src/prim.rs crates/datatype/src/segment.rs crates/datatype/src/typ.rs

/root/repo/target/debug/deps/libibdt_datatype-4856fc2f1639a7b0.rmeta: crates/datatype/src/lib.rs crates/datatype/src/cache.rs crates/datatype/src/dataloop.rs crates/datatype/src/flat.rs crates/datatype/src/plan.rs crates/datatype/src/prim.rs crates/datatype/src/segment.rs crates/datatype/src/typ.rs

crates/datatype/src/lib.rs:
crates/datatype/src/cache.rs:
crates/datatype/src/dataloop.rs:
crates/datatype/src/flat.rs:
crates/datatype/src/plan.rs:
crates/datatype/src/prim.rs:
crates/datatype/src/segment.rs:
crates/datatype/src/typ.rs:
