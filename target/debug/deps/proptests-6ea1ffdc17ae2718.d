/root/repo/target/debug/deps/proptests-6ea1ffdc17ae2718.d: crates/simcore/tests/proptests.rs

/root/repo/target/debug/deps/proptests-6ea1ffdc17ae2718: crates/simcore/tests/proptests.rs

crates/simcore/tests/proptests.rs:
