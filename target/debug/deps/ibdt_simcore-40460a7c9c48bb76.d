/root/repo/target/debug/deps/ibdt_simcore-40460a7c9c48bb76.d: crates/simcore/src/lib.rs crates/simcore/src/engine.rs crates/simcore/src/queue.rs crates/simcore/src/resource.rs crates/simcore/src/time.rs crates/simcore/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libibdt_simcore-40460a7c9c48bb76.rmeta: crates/simcore/src/lib.rs crates/simcore/src/engine.rs crates/simcore/src/queue.rs crates/simcore/src/resource.rs crates/simcore/src/time.rs crates/simcore/src/trace.rs Cargo.toml

crates/simcore/src/lib.rs:
crates/simcore/src/engine.rs:
crates/simcore/src/queue.rs:
crates/simcore/src/resource.rs:
crates/simcore/src/time.rs:
crates/simcore/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
