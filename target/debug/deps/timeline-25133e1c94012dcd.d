/root/repo/target/debug/deps/timeline-25133e1c94012dcd.d: crates/bench/src/bin/timeline.rs

/root/repo/target/debug/deps/timeline-25133e1c94012dcd: crates/bench/src/bin/timeline.rs

crates/bench/src/bin/timeline.rs:
