/root/repo/target/debug/deps/proptests-1520fac61633c801.d: crates/datatype/tests/proptests.rs

/root/repo/target/debug/deps/proptests-1520fac61633c801: crates/datatype/tests/proptests.rs

crates/datatype/tests/proptests.rs:
