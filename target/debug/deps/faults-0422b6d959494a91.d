/root/repo/target/debug/deps/faults-0422b6d959494a91.d: crates/ibsim/tests/faults.rs Cargo.toml

/root/repo/target/debug/deps/libfaults-0422b6d959494a91.rmeta: crates/ibsim/tests/faults.rs Cargo.toml

crates/ibsim/tests/faults.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
