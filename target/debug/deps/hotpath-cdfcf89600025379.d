/root/repo/target/debug/deps/hotpath-cdfcf89600025379.d: crates/bench/src/bin/hotpath.rs

/root/repo/target/debug/deps/hotpath-cdfcf89600025379: crates/bench/src/bin/hotpath.rs

crates/bench/src/bin/hotpath.rs:
