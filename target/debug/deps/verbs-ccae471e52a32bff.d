/root/repo/target/debug/deps/verbs-ccae471e52a32bff.d: crates/ibsim/tests/verbs.rs Cargo.toml

/root/repo/target/debug/deps/libverbs-ccae471e52a32bff.rmeta: crates/ibsim/tests/verbs.rs Cargo.toml

crates/ibsim/tests/verbs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
