/root/repo/target/debug/deps/ibdt_memreg-25e0653abbe67b7f.d: crates/memreg/src/lib.rs crates/memreg/src/addr.rs crates/memreg/src/cache.rs crates/memreg/src/cost.rs crates/memreg/src/error.rs crates/memreg/src/ogr.rs crates/memreg/src/table.rs

/root/repo/target/debug/deps/libibdt_memreg-25e0653abbe67b7f.rlib: crates/memreg/src/lib.rs crates/memreg/src/addr.rs crates/memreg/src/cache.rs crates/memreg/src/cost.rs crates/memreg/src/error.rs crates/memreg/src/ogr.rs crates/memreg/src/table.rs

/root/repo/target/debug/deps/libibdt_memreg-25e0653abbe67b7f.rmeta: crates/memreg/src/lib.rs crates/memreg/src/addr.rs crates/memreg/src/cache.rs crates/memreg/src/cost.rs crates/memreg/src/error.rs crates/memreg/src/ogr.rs crates/memreg/src/table.rs

crates/memreg/src/lib.rs:
crates/memreg/src/addr.rs:
crates/memreg/src/cache.rs:
crates/memreg/src/cost.rs:
crates/memreg/src/error.rs:
crates/memreg/src/ogr.rs:
crates/memreg/src/table.rs:
