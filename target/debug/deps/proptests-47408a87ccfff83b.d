/root/repo/target/debug/deps/proptests-47408a87ccfff83b.d: crates/datatype/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-47408a87ccfff83b.rmeta: crates/datatype/tests/proptests.rs Cargo.toml

crates/datatype/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
