/root/repo/target/debug/deps/schemes-b3d163c6794bff0b.d: crates/mpicore/tests/schemes.rs

/root/repo/target/debug/deps/schemes-b3d163c6794bff0b: crates/mpicore/tests/schemes.rs

crates/mpicore/tests/schemes.rs:
