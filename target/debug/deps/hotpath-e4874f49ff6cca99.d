/root/repo/target/debug/deps/hotpath-e4874f49ff6cca99.d: crates/bench/src/bin/hotpath.rs Cargo.toml

/root/repo/target/debug/deps/libhotpath-e4874f49ff6cca99.rmeta: crates/bench/src/bin/hotpath.rs Cargo.toml

crates/bench/src/bin/hotpath.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
