/root/repo/target/debug/deps/ibdt_ibsim-322ab70447f5e7b6.d: crates/ibsim/src/lib.rs crates/ibsim/src/fabric.rs crates/ibsim/src/fault.rs crates/ibsim/src/model.rs crates/ibsim/src/wr.rs

/root/repo/target/debug/deps/libibdt_ibsim-322ab70447f5e7b6.rlib: crates/ibsim/src/lib.rs crates/ibsim/src/fabric.rs crates/ibsim/src/fault.rs crates/ibsim/src/model.rs crates/ibsim/src/wr.rs

/root/repo/target/debug/deps/libibdt_ibsim-322ab70447f5e7b6.rmeta: crates/ibsim/src/lib.rs crates/ibsim/src/fabric.rs crates/ibsim/src/fault.rs crates/ibsim/src/model.rs crates/ibsim/src/wr.rs

crates/ibsim/src/lib.rs:
crates/ibsim/src/fabric.rs:
crates/ibsim/src/fault.rs:
crates/ibsim/src/model.rs:
crates/ibsim/src/wr.rs:
