/root/repo/target/debug/deps/proptests-a573e17357354122.d: crates/ibsim/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-a573e17357354122.rmeta: crates/ibsim/tests/proptests.rs Cargo.toml

crates/ibsim/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
