/root/repo/target/debug/deps/ibdt-85debdfca0d324ca.d: src/lib.rs

/root/repo/target/debug/deps/ibdt-85debdfca0d324ca: src/lib.rs

src/lib.rs:
