/root/repo/target/debug/deps/errors-52c4d5e6c8b4f5d1.d: crates/mpicore/tests/errors.rs Cargo.toml

/root/repo/target/debug/deps/liberrors-52c4d5e6c8b4f5d1.rmeta: crates/mpicore/tests/errors.rs Cargo.toml

crates/mpicore/tests/errors.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
