/root/repo/target/debug/deps/ibdt_workloads-7cd59d56e08b8327.d: crates/workloads/src/lib.rs crates/workloads/src/drivers.rs crates/workloads/src/structdt.rs crates/workloads/src/sweep.rs crates/workloads/src/vector.rs

/root/repo/target/debug/deps/libibdt_workloads-7cd59d56e08b8327.rlib: crates/workloads/src/lib.rs crates/workloads/src/drivers.rs crates/workloads/src/structdt.rs crates/workloads/src/sweep.rs crates/workloads/src/vector.rs

/root/repo/target/debug/deps/libibdt_workloads-7cd59d56e08b8327.rmeta: crates/workloads/src/lib.rs crates/workloads/src/drivers.rs crates/workloads/src/structdt.rs crates/workloads/src/sweep.rs crates/workloads/src/vector.rs

crates/workloads/src/lib.rs:
crates/workloads/src/drivers.rs:
crates/workloads/src/structdt.rs:
crates/workloads/src/sweep.rs:
crates/workloads/src/vector.rs:
