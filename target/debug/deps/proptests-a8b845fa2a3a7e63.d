/root/repo/target/debug/deps/proptests-a8b845fa2a3a7e63.d: crates/memreg/tests/proptests.rs

/root/repo/target/debug/deps/proptests-a8b845fa2a3a7e63: crates/memreg/tests/proptests.rs

crates/memreg/tests/proptests.rs:
