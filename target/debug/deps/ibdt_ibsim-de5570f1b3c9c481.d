/root/repo/target/debug/deps/ibdt_ibsim-de5570f1b3c9c481.d: crates/ibsim/src/lib.rs crates/ibsim/src/fabric.rs crates/ibsim/src/fault.rs crates/ibsim/src/model.rs crates/ibsim/src/wr.rs Cargo.toml

/root/repo/target/debug/deps/libibdt_ibsim-de5570f1b3c9c481.rmeta: crates/ibsim/src/lib.rs crates/ibsim/src/fabric.rs crates/ibsim/src/fault.rs crates/ibsim/src/model.rs crates/ibsim/src/wr.rs Cargo.toml

crates/ibsim/src/lib.rs:
crates/ibsim/src/fabric.rs:
crates/ibsim/src/fault.rs:
crates/ibsim/src/model.rs:
crates/ibsim/src/wr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
