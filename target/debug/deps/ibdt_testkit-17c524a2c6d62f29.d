/root/repo/target/debug/deps/ibdt_testkit-17c524a2c6d62f29.d: crates/testkit/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libibdt_testkit-17c524a2c6d62f29.rmeta: crates/testkit/src/lib.rs Cargo.toml

crates/testkit/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
