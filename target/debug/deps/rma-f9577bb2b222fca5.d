/root/repo/target/debug/deps/rma-f9577bb2b222fca5.d: crates/mpicore/tests/rma.rs

/root/repo/target/debug/deps/rma-f9577bb2b222fca5: crates/mpicore/tests/rma.rs

crates/mpicore/tests/rma.rs:
