/root/repo/target/debug/deps/features-4cae8b1b4fa57a6e.d: crates/mpicore/tests/features.rs

/root/repo/target/debug/deps/features-4cae8b1b4fa57a6e: crates/mpicore/tests/features.rs

crates/mpicore/tests/features.rs:
