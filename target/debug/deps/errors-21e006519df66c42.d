/root/repo/target/debug/deps/errors-21e006519df66c42.d: crates/mpicore/tests/errors.rs

/root/repo/target/debug/deps/errors-21e006519df66c42: crates/mpicore/tests/errors.rs

crates/mpicore/tests/errors.rs:
