/root/repo/target/debug/deps/ibdt_testkit-7760171aecb3b6ce.d: crates/testkit/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libibdt_testkit-7760171aecb3b6ce.rmeta: crates/testkit/src/lib.rs Cargo.toml

crates/testkit/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
