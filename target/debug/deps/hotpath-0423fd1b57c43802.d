/root/repo/target/debug/deps/hotpath-0423fd1b57c43802.d: crates/bench/src/bin/hotpath.rs Cargo.toml

/root/repo/target/debug/deps/libhotpath-0423fd1b57c43802.rmeta: crates/bench/src/bin/hotpath.rs Cargo.toml

crates/bench/src/bin/hotpath.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
