/root/repo/target/debug/deps/proptests-9c4be3e3e181a340.d: crates/memreg/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-9c4be3e3e181a340.rmeta: crates/memreg/tests/proptests.rs Cargo.toml

crates/memreg/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
