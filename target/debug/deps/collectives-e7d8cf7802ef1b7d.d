/root/repo/target/debug/deps/collectives-e7d8cf7802ef1b7d.d: crates/mpicore/tests/collectives.rs

/root/repo/target/debug/deps/collectives-e7d8cf7802ef1b7d: crates/mpicore/tests/collectives.rs

crates/mpicore/tests/collectives.rs:
