/root/repo/target/debug/deps/random_transfers-0fd12183a47fb896.d: tests/random_transfers.rs

/root/repo/target/debug/deps/random_transfers-0fd12183a47fb896: tests/random_transfers.rs

tests/random_transfers.rs:
