/root/repo/target/debug/deps/figures-dd4579009c6e934d.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-dd4579009c6e934d.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
