/root/repo/target/debug/deps/ibdt_simcore-66f462c0d77f6ee4.d: crates/simcore/src/lib.rs crates/simcore/src/engine.rs crates/simcore/src/queue.rs crates/simcore/src/resource.rs crates/simcore/src/time.rs crates/simcore/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libibdt_simcore-66f462c0d77f6ee4.rmeta: crates/simcore/src/lib.rs crates/simcore/src/engine.rs crates/simcore/src/queue.rs crates/simcore/src/resource.rs crates/simcore/src/time.rs crates/simcore/src/trace.rs Cargo.toml

crates/simcore/src/lib.rs:
crates/simcore/src/engine.rs:
crates/simcore/src/queue.rs:
crates/simcore/src/resource.rs:
crates/simcore/src/time.rs:
crates/simcore/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
