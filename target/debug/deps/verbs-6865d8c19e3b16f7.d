/root/repo/target/debug/deps/verbs-6865d8c19e3b16f7.d: crates/ibsim/tests/verbs.rs

/root/repo/target/debug/deps/verbs-6865d8c19e3b16f7: crates/ibsim/tests/verbs.rs

crates/ibsim/tests/verbs.rs:
