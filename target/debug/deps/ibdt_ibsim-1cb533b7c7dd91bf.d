/root/repo/target/debug/deps/ibdt_ibsim-1cb533b7c7dd91bf.d: crates/ibsim/src/lib.rs crates/ibsim/src/fabric.rs crates/ibsim/src/fault.rs crates/ibsim/src/model.rs crates/ibsim/src/wr.rs

/root/repo/target/debug/deps/ibdt_ibsim-1cb533b7c7dd91bf: crates/ibsim/src/lib.rs crates/ibsim/src/fabric.rs crates/ibsim/src/fault.rs crates/ibsim/src/model.rs crates/ibsim/src/wr.rs

crates/ibsim/src/lib.rs:
crates/ibsim/src/fabric.rs:
crates/ibsim/src/fault.rs:
crates/ibsim/src/model.rs:
crates/ibsim/src/wr.rs:
