/root/repo/target/debug/deps/plan_equivalence-5744a308bb882417.d: tests/plan_equivalence.rs

/root/repo/target/debug/deps/plan_equivalence-5744a308bb882417: tests/plan_equivalence.rs

tests/plan_equivalence.rs:
