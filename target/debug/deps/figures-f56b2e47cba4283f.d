/root/repo/target/debug/deps/figures-f56b2e47cba4283f.d: crates/bench/src/bin/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-f56b2e47cba4283f.rmeta: crates/bench/src/bin/figures.rs Cargo.toml

crates/bench/src/bin/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
