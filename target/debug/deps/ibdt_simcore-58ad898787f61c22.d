/root/repo/target/debug/deps/ibdt_simcore-58ad898787f61c22.d: crates/simcore/src/lib.rs crates/simcore/src/engine.rs crates/simcore/src/queue.rs crates/simcore/src/resource.rs crates/simcore/src/time.rs crates/simcore/src/trace.rs

/root/repo/target/debug/deps/libibdt_simcore-58ad898787f61c22.rlib: crates/simcore/src/lib.rs crates/simcore/src/engine.rs crates/simcore/src/queue.rs crates/simcore/src/resource.rs crates/simcore/src/time.rs crates/simcore/src/trace.rs

/root/repo/target/debug/deps/libibdt_simcore-58ad898787f61c22.rmeta: crates/simcore/src/lib.rs crates/simcore/src/engine.rs crates/simcore/src/queue.rs crates/simcore/src/resource.rs crates/simcore/src/time.rs crates/simcore/src/trace.rs

crates/simcore/src/lib.rs:
crates/simcore/src/engine.rs:
crates/simcore/src/queue.rs:
crates/simcore/src/resource.rs:
crates/simcore/src/time.rs:
crates/simcore/src/trace.rs:
