/root/repo/target/debug/deps/ibdt_bench-97adbec4b962123c.d: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libibdt_bench-97adbec4b962123c.rlib: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libibdt_bench-97adbec4b962123c.rmeta: crates/bench/src/lib.rs crates/bench/src/figures.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/figures.rs:
crates/bench/src/table.rs:
