/root/repo/target/debug/deps/hotpath-16fa3e588c7fe30a.d: crates/bench/src/bin/hotpath.rs

/root/repo/target/debug/deps/hotpath-16fa3e588c7fe30a: crates/bench/src/bin/hotpath.rs

crates/bench/src/bin/hotpath.rs:
