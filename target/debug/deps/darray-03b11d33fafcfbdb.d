/root/repo/target/debug/deps/darray-03b11d33fafcfbdb.d: crates/datatype/tests/darray.rs

/root/repo/target/debug/deps/darray-03b11d33fafcfbdb: crates/datatype/tests/darray.rs

crates/datatype/tests/darray.rs:
