/root/repo/target/debug/deps/proptests-6ac46f4c4ab3d5ee.d: crates/simcore/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-6ac46f4c4ab3d5ee.rmeta: crates/simcore/tests/proptests.rs Cargo.toml

crates/simcore/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
