/root/repo/target/debug/deps/datatype_engine-5f5038099961c6d0.d: crates/bench/benches/datatype_engine.rs Cargo.toml

/root/repo/target/debug/deps/libdatatype_engine-5f5038099961c6d0.rmeta: crates/bench/benches/datatype_engine.rs Cargo.toml

crates/bench/benches/datatype_engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
