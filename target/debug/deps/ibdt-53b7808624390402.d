/root/repo/target/debug/deps/ibdt-53b7808624390402.d: src/lib.rs

/root/repo/target/debug/deps/libibdt-53b7808624390402.rlib: src/lib.rs

/root/repo/target/debug/deps/libibdt-53b7808624390402.rmeta: src/lib.rs

src/lib.rs:
