/root/repo/target/debug/deps/features-d01ad6ecddba4c4e.d: crates/mpicore/tests/features.rs Cargo.toml

/root/repo/target/debug/deps/libfeatures-d01ad6ecddba4c4e.rmeta: crates/mpicore/tests/features.rs Cargo.toml

crates/mpicore/tests/features.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
