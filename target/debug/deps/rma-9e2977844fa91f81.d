/root/repo/target/debug/deps/rma-9e2977844fa91f81.d: crates/mpicore/tests/rma.rs Cargo.toml

/root/repo/target/debug/deps/librma-9e2977844fa91f81.rmeta: crates/mpicore/tests/rma.rs Cargo.toml

crates/mpicore/tests/rma.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
