/root/repo/target/debug/deps/ibdt_testkit-b853eb72513186ea.d: crates/testkit/src/lib.rs

/root/repo/target/debug/deps/libibdt_testkit-b853eb72513186ea.rlib: crates/testkit/src/lib.rs

/root/repo/target/debug/deps/libibdt_testkit-b853eb72513186ea.rmeta: crates/testkit/src/lib.rs

crates/testkit/src/lib.rs:
