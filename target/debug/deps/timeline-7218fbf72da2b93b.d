/root/repo/target/debug/deps/timeline-7218fbf72da2b93b.d: crates/bench/src/bin/timeline.rs Cargo.toml

/root/repo/target/debug/deps/libtimeline-7218fbf72da2b93b.rmeta: crates/bench/src/bin/timeline.rs Cargo.toml

crates/bench/src/bin/timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
