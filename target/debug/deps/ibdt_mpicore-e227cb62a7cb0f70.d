/root/repo/target/debug/deps/ibdt_mpicore-e227cb62a7cb0f70.d: crates/mpicore/src/lib.rs crates/mpicore/src/cluster.rs crates/mpicore/src/coll.rs crates/mpicore/src/config.rs crates/mpicore/src/error.rs crates/mpicore/src/msg.rs crates/mpicore/src/plan.rs crates/mpicore/src/pool.rs crates/mpicore/src/progress.rs crates/mpicore/src/rank.rs crates/mpicore/src/rma.rs crates/mpicore/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libibdt_mpicore-e227cb62a7cb0f70.rmeta: crates/mpicore/src/lib.rs crates/mpicore/src/cluster.rs crates/mpicore/src/coll.rs crates/mpicore/src/config.rs crates/mpicore/src/error.rs crates/mpicore/src/msg.rs crates/mpicore/src/plan.rs crates/mpicore/src/pool.rs crates/mpicore/src/progress.rs crates/mpicore/src/rank.rs crates/mpicore/src/rma.rs crates/mpicore/src/stats.rs Cargo.toml

crates/mpicore/src/lib.rs:
crates/mpicore/src/cluster.rs:
crates/mpicore/src/coll.rs:
crates/mpicore/src/config.rs:
crates/mpicore/src/error.rs:
crates/mpicore/src/msg.rs:
crates/mpicore/src/plan.rs:
crates/mpicore/src/pool.rs:
crates/mpicore/src/progress.rs:
crates/mpicore/src/rank.rs:
crates/mpicore/src/rma.rs:
crates/mpicore/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
