/root/repo/target/debug/deps/ibdt_testkit-5ea5d688cfcba202.d: crates/testkit/src/lib.rs

/root/repo/target/debug/deps/ibdt_testkit-5ea5d688cfcba202: crates/testkit/src/lib.rs

crates/testkit/src/lib.rs:
