/root/repo/target/debug/deps/random_transfers-4996d47380a4d6f2.d: tests/random_transfers.rs Cargo.toml

/root/repo/target/debug/deps/librandom_transfers-4996d47380a4d6f2.rmeta: tests/random_transfers.rs Cargo.toml

tests/random_transfers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
