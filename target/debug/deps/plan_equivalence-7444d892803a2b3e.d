/root/repo/target/debug/deps/plan_equivalence-7444d892803a2b3e.d: tests/plan_equivalence.rs Cargo.toml

/root/repo/target/debug/deps/libplan_equivalence-7444d892803a2b3e.rmeta: tests/plan_equivalence.rs Cargo.toml

tests/plan_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
