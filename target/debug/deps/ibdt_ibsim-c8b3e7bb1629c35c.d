/root/repo/target/debug/deps/ibdt_ibsim-c8b3e7bb1629c35c.d: crates/ibsim/src/lib.rs crates/ibsim/src/fabric.rs crates/ibsim/src/fault.rs crates/ibsim/src/model.rs crates/ibsim/src/wr.rs Cargo.toml

/root/repo/target/debug/deps/libibdt_ibsim-c8b3e7bb1629c35c.rmeta: crates/ibsim/src/lib.rs crates/ibsim/src/fabric.rs crates/ibsim/src/fault.rs crates/ibsim/src/model.rs crates/ibsim/src/wr.rs Cargo.toml

crates/ibsim/src/lib.rs:
crates/ibsim/src/fabric.rs:
crates/ibsim/src/fault.rs:
crates/ibsim/src/model.rs:
crates/ibsim/src/wr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
