/root/repo/target/debug/deps/schemes-5fa6a541ab97527e.d: crates/bench/benches/schemes.rs Cargo.toml

/root/repo/target/debug/deps/libschemes-5fa6a541ab97527e.rmeta: crates/bench/benches/schemes.rs Cargo.toml

crates/bench/benches/schemes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
