/root/repo/target/debug/deps/ibdt_workloads-943c55d228d34ae1.d: crates/workloads/src/lib.rs crates/workloads/src/drivers.rs crates/workloads/src/structdt.rs crates/workloads/src/sweep.rs crates/workloads/src/vector.rs Cargo.toml

/root/repo/target/debug/deps/libibdt_workloads-943c55d228d34ae1.rmeta: crates/workloads/src/lib.rs crates/workloads/src/drivers.rs crates/workloads/src/structdt.rs crates/workloads/src/sweep.rs crates/workloads/src/vector.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/drivers.rs:
crates/workloads/src/structdt.rs:
crates/workloads/src/sweep.rs:
crates/workloads/src/vector.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
