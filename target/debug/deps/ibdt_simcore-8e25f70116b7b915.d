/root/repo/target/debug/deps/ibdt_simcore-8e25f70116b7b915.d: crates/simcore/src/lib.rs crates/simcore/src/engine.rs crates/simcore/src/queue.rs crates/simcore/src/resource.rs crates/simcore/src/time.rs crates/simcore/src/trace.rs

/root/repo/target/debug/deps/ibdt_simcore-8e25f70116b7b915: crates/simcore/src/lib.rs crates/simcore/src/engine.rs crates/simcore/src/queue.rs crates/simcore/src/resource.rs crates/simcore/src/time.rs crates/simcore/src/trace.rs

crates/simcore/src/lib.rs:
crates/simcore/src/engine.rs:
crates/simcore/src/queue.rs:
crates/simcore/src/resource.rs:
crates/simcore/src/time.rs:
crates/simcore/src/trace.rs:
