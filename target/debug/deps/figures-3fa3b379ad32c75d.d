/root/repo/target/debug/deps/figures-3fa3b379ad32c75d.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-3fa3b379ad32c75d: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
