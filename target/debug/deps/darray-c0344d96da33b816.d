/root/repo/target/debug/deps/darray-c0344d96da33b816.d: crates/datatype/tests/darray.rs Cargo.toml

/root/repo/target/debug/deps/libdarray-c0344d96da33b816.rmeta: crates/datatype/tests/darray.rs Cargo.toml

crates/datatype/tests/darray.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
