/root/repo/target/debug/deps/figures_smoke-1f8ee26533ce9171.d: crates/bench/tests/figures_smoke.rs

/root/repo/target/debug/deps/figures_smoke-1f8ee26533ce9171: crates/bench/tests/figures_smoke.rs

crates/bench/tests/figures_smoke.rs:
