/root/repo/target/debug/deps/figures_smoke-4e5e975743ca90da.d: crates/bench/tests/figures_smoke.rs

/root/repo/target/debug/deps/figures_smoke-4e5e975743ca90da: crates/bench/tests/figures_smoke.rs

crates/bench/tests/figures_smoke.rs:
