/root/repo/target/debug/deps/ibdt_memreg-54806ad469fc0fe7.d: crates/memreg/src/lib.rs crates/memreg/src/addr.rs crates/memreg/src/cache.rs crates/memreg/src/cost.rs crates/memreg/src/error.rs crates/memreg/src/ogr.rs crates/memreg/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libibdt_memreg-54806ad469fc0fe7.rmeta: crates/memreg/src/lib.rs crates/memreg/src/addr.rs crates/memreg/src/cache.rs crates/memreg/src/cost.rs crates/memreg/src/error.rs crates/memreg/src/ogr.rs crates/memreg/src/table.rs Cargo.toml

crates/memreg/src/lib.rs:
crates/memreg/src/addr.rs:
crates/memreg/src/cache.rs:
crates/memreg/src/cost.rs:
crates/memreg/src/error.rs:
crates/memreg/src/ogr.rs:
crates/memreg/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
