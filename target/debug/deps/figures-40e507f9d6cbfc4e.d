/root/repo/target/debug/deps/figures-40e507f9d6cbfc4e.d: crates/bench/src/bin/figures.rs

/root/repo/target/debug/deps/figures-40e507f9d6cbfc4e: crates/bench/src/bin/figures.rs

crates/bench/src/bin/figures.rs:
