/root/repo/target/debug/deps/chaos-6c2f476b423bab15.d: tests/chaos.rs

/root/repo/target/debug/deps/chaos-6c2f476b423bab15: tests/chaos.rs

tests/chaos.rs:
