/root/repo/target/debug/deps/collectives-d2fb430ce1fd257f.d: crates/mpicore/tests/collectives.rs Cargo.toml

/root/repo/target/debug/deps/libcollectives-d2fb430ce1fd257f.rmeta: crates/mpicore/tests/collectives.rs Cargo.toml

crates/mpicore/tests/collectives.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
