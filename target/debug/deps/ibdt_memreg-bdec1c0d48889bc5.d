/root/repo/target/debug/deps/ibdt_memreg-bdec1c0d48889bc5.d: crates/memreg/src/lib.rs crates/memreg/src/addr.rs crates/memreg/src/cache.rs crates/memreg/src/cost.rs crates/memreg/src/error.rs crates/memreg/src/ogr.rs crates/memreg/src/table.rs

/root/repo/target/debug/deps/ibdt_memreg-bdec1c0d48889bc5: crates/memreg/src/lib.rs crates/memreg/src/addr.rs crates/memreg/src/cache.rs crates/memreg/src/cost.rs crates/memreg/src/error.rs crates/memreg/src/ogr.rs crates/memreg/src/table.rs

crates/memreg/src/lib.rs:
crates/memreg/src/addr.rs:
crates/memreg/src/cache.rs:
crates/memreg/src/cost.rs:
crates/memreg/src/error.rs:
crates/memreg/src/ogr.rs:
crates/memreg/src/table.rs:
