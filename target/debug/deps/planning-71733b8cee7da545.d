/root/repo/target/debug/deps/planning-71733b8cee7da545.d: crates/bench/benches/planning.rs Cargo.toml

/root/repo/target/debug/deps/libplanning-71733b8cee7da545.rmeta: crates/bench/benches/planning.rs Cargo.toml

crates/bench/benches/planning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
