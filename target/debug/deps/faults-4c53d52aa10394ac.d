/root/repo/target/debug/deps/faults-4c53d52aa10394ac.d: crates/ibsim/tests/faults.rs

/root/repo/target/debug/deps/faults-4c53d52aa10394ac: crates/ibsim/tests/faults.rs

crates/ibsim/tests/faults.rs:
