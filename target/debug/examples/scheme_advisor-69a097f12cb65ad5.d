/root/repo/target/debug/examples/scheme_advisor-69a097f12cb65ad5.d: examples/scheme_advisor.rs Cargo.toml

/root/repo/target/debug/examples/libscheme_advisor-69a097f12cb65ad5.rmeta: examples/scheme_advisor.rs Cargo.toml

examples/scheme_advisor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
