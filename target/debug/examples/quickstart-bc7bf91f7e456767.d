/root/repo/target/debug/examples/quickstart-bc7bf91f7e456767.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-bc7bf91f7e456767: examples/quickstart.rs

examples/quickstart.rs:
