/root/repo/target/debug/examples/halo_exchange-4690c15a77484964.d: examples/halo_exchange.rs Cargo.toml

/root/repo/target/debug/examples/libhalo_exchange-4690c15a77484964.rmeta: examples/halo_exchange.rs Cargo.toml

examples/halo_exchange.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
