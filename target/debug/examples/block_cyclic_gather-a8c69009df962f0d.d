/root/repo/target/debug/examples/block_cyclic_gather-a8c69009df962f0d.d: examples/block_cyclic_gather.rs Cargo.toml

/root/repo/target/debug/examples/libblock_cyclic_gather-a8c69009df962f0d.rmeta: examples/block_cyclic_gather.rs Cargo.toml

examples/block_cyclic_gather.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
