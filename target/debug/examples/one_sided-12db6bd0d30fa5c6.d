/root/repo/target/debug/examples/one_sided-12db6bd0d30fa5c6.d: examples/one_sided.rs Cargo.toml

/root/repo/target/debug/examples/libone_sided-12db6bd0d30fa5c6.rmeta: examples/one_sided.rs Cargo.toml

examples/one_sided.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
