/root/repo/target/debug/examples/block_cyclic_gather-a1ecb016327f8fa4.d: examples/block_cyclic_gather.rs

/root/repo/target/debug/examples/block_cyclic_gather-a1ecb016327f8fa4: examples/block_cyclic_gather.rs

examples/block_cyclic_gather.rs:
