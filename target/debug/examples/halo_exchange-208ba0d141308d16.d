/root/repo/target/debug/examples/halo_exchange-208ba0d141308d16.d: examples/halo_exchange.rs

/root/repo/target/debug/examples/halo_exchange-208ba0d141308d16: examples/halo_exchange.rs

examples/halo_exchange.rs:
