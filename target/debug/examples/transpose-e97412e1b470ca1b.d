/root/repo/target/debug/examples/transpose-e97412e1b470ca1b.d: examples/transpose.rs

/root/repo/target/debug/examples/transpose-e97412e1b470ca1b: examples/transpose.rs

examples/transpose.rs:
