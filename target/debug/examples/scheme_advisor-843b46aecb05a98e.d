/root/repo/target/debug/examples/scheme_advisor-843b46aecb05a98e.d: examples/scheme_advisor.rs

/root/repo/target/debug/examples/scheme_advisor-843b46aecb05a98e: examples/scheme_advisor.rs

examples/scheme_advisor.rs:
