/root/repo/target/debug/examples/one_sided-de019c61e1aa96a0.d: examples/one_sided.rs

/root/repo/target/debug/examples/one_sided-de019c61e1aa96a0: examples/one_sided.rs

examples/one_sided.rs:
