/root/repo/target/debug/examples/transpose-b6b469097633800a.d: examples/transpose.rs Cargo.toml

/root/repo/target/debug/examples/libtranspose-b6b469097633800a.rmeta: examples/transpose.rs Cargo.toml

examples/transpose.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
